"""Black-box graph algorithms runnable on sketches or exact graphs.

The paper's central claim (Section 4, "Wrap-Up") is that off-the-shelf
graph algorithms run unmodified on a TCM sketch because the sketch *is* a
graph: ``M(G) ~ merge(M(S1), ..., M(Sd))``.  We realize that by defining a
tiny :class:`~repro.analytics.views.GraphView` interface and implementing
every algorithm against it; adapters expose both the exact
:class:`~repro.streams.model.GraphStream` and each graphical
:class:`~repro.core.graph_sketch.GraphSketch` as views.
"""

from repro.analytics.views import GraphView, SketchView, StreamView
from repro.analytics.communities import label_propagation, modularity
from repro.analytics.components import (
    count_components,
    strongly_connected_components,
    weakly_connected_components,
)
from repro.analytics.neighborhood import (
    common_neighbours,
    jaccard_similarity,
    k_hop_neighbourhood,
)
from repro.analytics.reachability import reach
from repro.analytics.paths import shortest_path, shortest_path_weight
from repro.analytics.subgraph import match_subgraph, subgraph_weight
from repro.analytics.pagerank import pagerank
from repro.analytics.triangles import count_triangles

__all__ = [
    "GraphView",
    "SketchView",
    "StreamView",
    "reach",
    "shortest_path",
    "shortest_path_weight",
    "match_subgraph",
    "subgraph_weight",
    "pagerank",
    "count_triangles",
    "weakly_connected_components",
    "strongly_connected_components",
    "count_components",
    "k_hop_neighbourhood",
    "common_neighbours",
    "jaccard_similarity",
    "label_propagation",
    "modularity",
]
