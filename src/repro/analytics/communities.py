"""Community detection on graph views.

Appendix B.2 motivates heavy triangle connections as a community-
detection primitive; this module adds the standard lightweight detector
-- synchronous label propagation -- over the same :class:`GraphView`
interface, so communities can be found on the exact stream *or* on a
sketch (super-node communities, mapped back to labels through the
extended sketch's ``ext``).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.analytics.views import GraphView, Node


def label_propagation(view: GraphView, max_iterations: int = 50,
                      seed: int = 0) -> List[Set[Node]]:
    """Weighted label-propagation communities, largest first.

    Every vertex starts in its own community and repeatedly adopts the
    label with the largest incident edge weight among its neighbours
    (undirected closure).  Deterministic: ties break by label order and
    updates sweep vertices in a seeded but fixed order, so results are
    reproducible.
    """
    if max_iterations < 1:
        raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
    nodes = sorted(view.nodes(), key=repr)
    # Undirected closure with summed weights.
    weights: Dict[Node, Dict[Node, float]] = {node: {} for node in nodes}
    for node in nodes:
        for succ in view.successors(node):
            if succ == node:
                continue
            w = view.edge_weight(node, succ)
            weights[node][succ] = weights[node].get(succ, 0.0) + w
            weights.setdefault(succ, {})
            weights[succ][node] = weights[succ].get(node, 0.0) + w

    label: Dict[Node, int] = {node: i for i, node in enumerate(nodes)}
    # A fixed pseudo-random sweep order decorrelates update waves.
    order = list(nodes)
    import random
    random.Random(seed).shuffle(order)

    for _ in range(max_iterations):
        changed = 0
        for node in order:
            neighbour_weights = weights.get(node)
            if not neighbour_weights:
                continue
            tally: Dict[int, float] = {}
            for neighbour, w in neighbour_weights.items():
                tally[label[neighbour]] = tally.get(label[neighbour], 0.0) + w
            best = min((candidate for candidate in tally
                        if tally[candidate] == max(tally.values())))
            if best != label[node]:
                label[node] = best
                changed += 1
        if changed == 0:
            break

    by_label: Dict[int, Set[Node]] = {}
    for node, community in label.items():
        by_label.setdefault(community, set()).add(node)
    communities = sorted(by_label.values(),
                         key=lambda c: (-len(c), repr(sorted(c, key=repr)[:1])))
    return communities


def modularity(view: GraphView, communities: List[Set[Node]]) -> float:
    """Newman modularity of a partition (undirected closure, weighted).

    In [-0.5, 1]; higher = denser within communities than expected by
    chance.  Useful to compare partitions found on the exact graph and
    on a sketch.
    """
    community_of: Dict[Node, int] = {}
    for index, community in enumerate(communities):
        for node in community:
            community_of[node] = index

    total = 0.0
    strength: Dict[Node, float] = {}
    internal = [0.0] * len(communities)
    seen = set()
    for node in view.nodes():
        for succ in view.successors(node):
            key = frozenset((node, succ)) if node != succ else (node, node)
            if key in seen:
                continue
            seen.add(key)
            w = view.edge_weight(node, succ)
            total += w
            strength[node] = strength.get(node, 0.0) + w
            strength[succ] = strength.get(succ, 0.0) + w
            if node != succ and community_of.get(node) == community_of.get(succ):
                internal[community_of[node]] += w
    if total == 0:
        return 0.0
    community_strength = [0.0] * len(communities)
    for node, s in strength.items():
        if node in community_of:
            community_strength[community_of[node]] += s
    score = 0.0
    for index in range(len(communities)):
        score += (internal[index] / total
                  - (community_strength[index] / (2 * total)) ** 2)
    return score
