"""Uniform read-only graph interface over sketches and exact streams.

Every analytics algorithm in this package is written once against
:class:`GraphView` and therefore runs both on the ground truth
(:class:`StreamView`) and on each constituent sketch of a TCM
(:class:`SketchView`) -- exactly the black-box reuse the paper advertises.

A view's *nodes* are whatever identifies a vertex in that representation:
original labels for streams, bucket indices for sketches.  Callers that
need to run a query phrased in labels against a sketch first map labels to
buckets with :meth:`SketchView.node_of`.
"""

from __future__ import annotations

import abc
from typing import Hashable, Iterable, Iterator

from repro.core.graph_sketch import GraphSketch
from repro.streams.model import GraphStream

Node = Hashable


class GraphView(abc.ABC):
    """Minimal weighted-digraph read interface for analytics algorithms."""

    @abc.abstractmethod
    def nodes(self) -> Iterator[Node]:
        """All vertices of the view."""

    @abc.abstractmethod
    def successors(self, node: Node) -> Iterable[Node]:
        """Vertices with a positive-weight edge out of ``node``."""

    @abc.abstractmethod
    def edge_weight(self, source: Node, target: Node) -> float:
        """Aggregated weight of the edge, 0 when absent."""

    @abc.abstractmethod
    def node_count(self) -> int:
        """Number of vertices (for algorithm sizing, e.g. PageRank)."""

    def has_edge(self, source: Node, target: Node) -> bool:
        return self.edge_weight(source, target) > 0


class SketchView(GraphView):
    """A graphical :class:`GraphSketch` seen as a weighted digraph.

    Vertices are bucket indices ``0..w-1``.  Only buckets are exposed;
    translating a query's labels into buckets is the caller's job via
    :meth:`node_of` (this is precisely the ``h_i[a]`` mapping in the
    paper's P1/S1 steps).
    """

    def __init__(self, sketch: GraphSketch):
        if not sketch.is_graphical:
            raise ValueError("SketchView requires a graphical (square) sketch")
        self._sketch = sketch

    @property
    def sketch(self) -> GraphSketch:
        return self._sketch

    @property
    def epoch(self) -> int:
        """The underlying sketch's update epoch (see ``GraphSketch.epoch``).

        Cache-backed consumers (``repro.core.query_engine``) key derived
        structures on this value to detect writes between queries.
        """
        return self._sketch.epoch

    def node_of(self, label) -> int:
        return self._sketch.node_of(label)

    def nodes(self) -> Iterator[int]:
        return iter(range(self._sketch.rows))

    def successors(self, node: int) -> Iterable[int]:
        return (int(b) for b in self._sketch.successors(node))

    def edge_weight(self, source: int, target: int) -> float:
        return self._sketch.bucket_edge_weight(source, target)

    def node_count(self) -> int:
        return self._sketch.rows


class StreamView(GraphView):
    """The exact aggregated multigraph of a :class:`GraphStream`."""

    def __init__(self, stream: GraphStream):
        self._stream = stream

    def nodes(self) -> Iterator[Node]:
        return iter(self._stream.nodes)

    def successors(self, node: Node) -> Iterable[Node]:
        return self._stream.successors(node)

    def edge_weight(self, source: Node, target: Node) -> float:
        return self._stream.edge_weight(source, target)

    def node_count(self) -> int:
        return len(self._stream.nodes)
