"""Connected-component algorithms on graph views.

Connectivity over streams is a founding problem of the graph-stream
literature (the paper cites Feigenbaum et al.'s semi-streaming work); on
a TCM it becomes plain graph computation over the sketch.  Component
structure over-approximates under hashing the same way reachability does:
nodes connected in the stream are connected in every sketch, so sketch
components are unions of true components (never splits).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set

from repro.analytics.views import GraphView, Node


def weakly_connected_components(view: GraphView) -> List[Set[Node]]:
    """Components of the undirected closure, largest first.

    Isolated vertices (no incident positive-weight edge) form singleton
    components.
    """
    neighbours: Dict[Node, Set[Node]] = {node: set() for node in view.nodes()}
    for node in list(neighbours):
        for succ in view.successors(node):
            neighbours[node].add(succ)
            neighbours.setdefault(succ, set()).add(node)

    seen: Set[Node] = set()
    components: List[Set[Node]] = []
    for start in neighbours:
        if start in seen:
            continue
        component: Set[Node] = set()
        frontier = [start]
        while frontier:
            node = frontier.pop()
            if node in component:
                continue
            component.add(node)
            frontier.extend(neighbours[node] - component)
        seen |= component
        components.append(component)
    components.sort(key=lambda c: (-len(c), repr(sorted(c, key=repr)[:1])))
    return components


def strongly_connected_components(view: GraphView) -> List[Set[Node]]:
    """Tarjan's SCCs (iterative), largest first."""
    index_of: Dict[Node, int] = {}
    low: Dict[Node, int] = {}
    on_stack: Set[Node] = set()
    stack: List[Node] = []
    components: List[Set[Node]] = []
    counter = 0

    for root in list(view.nodes()):
        if root in index_of:
            continue
        # Iterative Tarjan: work items are (node, iterator over succs).
        work = [(root, iter(list(view.successors(root))))]
        index_of[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index_of:
                    index_of[succ] = low[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(list(view.successors(succ)))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                component: Set[Node] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    components.sort(key=lambda c: (-len(c), repr(sorted(c, key=repr)[:1])))
    return components


def count_components(view: GraphView, strongly: bool = False) -> int:
    """Number of (weakly or strongly) connected components."""
    finder = (strongly_connected_components if strongly
              else weakly_connected_components)
    return len(finder(view))


def same_component(view: GraphView, a: Node, b: Node) -> bool:
    """Whether two vertices share a weakly connected component."""
    for component in weakly_connected_components(view):
        if a in component:
            return b in component
    return False
