"""Weighted shortest paths on graph views.

Motivated by the paper's IP-routing application (Section 4.3): determining
the path of data flows needs edge weights, not just connectivity.  Like
``reach()``, this is an off-the-shelf algorithm the TCM layer runs per
sketch and merges.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Tuple

from repro.analytics.views import GraphView, Node


def shortest_path_weight(view: GraphView, source: Node, target: Node) -> float:
    """Dijkstra shortest-path weight from ``source`` to ``target``.

    Returns ``math.inf`` when ``target`` is unreachable.  All edge weights
    in the stream model are non-negative, so Dijkstra applies directly.
    """
    if source == target:
        return 0.0
    distances: Dict[Node, float] = {source: 0.0}
    heap: List[Tuple[float, int, Node]] = [(0.0, 0, source)]
    counter = 1  # tie-breaker so heterogeneous nodes never get compared
    while heap:
        dist, _, node = heapq.heappop(heap)
        if node == target:
            return dist
        if dist > distances.get(node, math.inf):
            continue
        for succ in view.successors(node):
            weight = view.edge_weight(node, succ)
            if weight <= 0:
                continue
            candidate = dist + weight
            if candidate < distances.get(succ, math.inf):
                distances[succ] = candidate
                heapq.heappush(heap, (candidate, counter, succ))
                counter += 1
    return math.inf


def shortest_path(view: GraphView, source: Node, target: Node) -> Optional[List[Node]]:
    """The actual node sequence of a shortest path, or ``None``."""
    if source == target:
        return [source]
    distances: Dict[Node, float] = {source: 0.0}
    parents: Dict[Node, Node] = {}
    heap: List[Tuple[float, int, Node]] = [(0.0, 0, source)]
    counter = 1
    while heap:
        dist, _, node = heapq.heappop(heap)
        if node == target:
            path = [node]
            while node in parents:
                node = parents[node]
                path.append(node)
            return list(reversed(path))
        if dist > distances.get(node, math.inf):
            continue
        for succ in view.successors(node):
            weight = view.edge_weight(node, succ)
            if weight <= 0:
                continue
            candidate = dist + weight
            if candidate < distances.get(succ, math.inf):
                distances[succ] = candidate
                parents[succ] = node
                heapq.heappush(heap, (candidate, counter, succ))
                counter += 1
    return None
