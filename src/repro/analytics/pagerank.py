"""Weighted PageRank on graph views.

Not an experiment from the paper, but the canonical demonstration of its
"off-the-shelf algorithms run on the sketch" claim (Section 4 Wrap-Up):
PageRank over a TCM sketch ranks super-nodes, and with the extended sketch
those ranks transfer back to labels.
"""

from __future__ import annotations

from typing import Dict

from repro.analytics.views import GraphView, Node


def pagerank(view: GraphView, damping: float = 0.85,
             max_iterations: int = 100, tolerance: float = 1e-9) -> Dict[Node, float]:
    """Power-iteration PageRank with edge weights as transition mass.

    Dangling nodes distribute their rank uniformly.  Returns a dict
    summing to 1 over the view's nodes.
    """
    if not 0 < damping < 1:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    nodes = list(view.nodes())
    n = len(nodes)
    if n == 0:
        return {}

    out_weights: Dict[Node, float] = {}
    successors: Dict[Node, list] = {}
    for node in nodes:
        succs = [(s, view.edge_weight(node, s)) for s in view.successors(node)]
        succs = [(s, w) for s, w in succs if w > 0]
        successors[node] = succs
        out_weights[node] = sum(w for _, w in succs)

    rank = {node: 1.0 / n for node in nodes}
    base = (1.0 - damping) / n
    for _ in range(max_iterations):
        next_rank = {node: base for node in nodes}
        dangling_mass = 0.0
        for node in nodes:
            total_out = out_weights[node]
            if total_out == 0:
                dangling_mass += rank[node]
                continue
            share = damping * rank[node] / total_out
            for succ, weight in successors[node]:
                next_rank[succ] += share * weight
        if dangling_mass:
            spread = damping * dangling_mass / n
            for node in nodes:
                next_rank[node] += spread
        delta = sum(abs(next_rank[node] - rank[node]) for node in nodes)
        rank = next_rank
        if delta < tolerance:
            break
    return rank
