"""Neighbourhood analytics on graph views.

k-hop neighbourhood sizes and common-neighbour queries -- the building
blocks of ego-network analysis and of the paper's triangle-flavoured
queries (a common neighbour of ``(x, y)`` is exactly a triangle
candidate).  Like everything in this package they run on exact streams
and on graphical sketches alike; on sketches the answers are in
super-node units and over-approximate connectivity.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set

from repro.analytics.views import GraphView, Node


def k_hop_neighbourhood(view: GraphView, start: Node, k: int,
                        directed: bool = True) -> Set[Node]:
    """Vertices within ``k`` forward hops of ``start`` (excluding it).

    :param directed: when False, traverse edges in both directions
        (requires only ``successors``; sketch views for undirected
        streams already expose symmetric successors).
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    reached: Set[Node] = set()
    frontier = deque([(start, 0)])
    visited = {start}
    predecessors: Dict[Node, List[Node]] = {}
    if not directed:
        # Build a reverse index once; views only expose successors.
        for node in view.nodes():
            for succ in view.successors(node):
                predecessors.setdefault(succ, []).append(node)
    while frontier:
        node, depth = frontier.popleft()
        if depth == k:
            continue
        neighbours = list(view.successors(node))
        if not directed:
            neighbours.extend(predecessors.get(node, ()))
        for succ in neighbours:
            if succ not in visited:
                visited.add(succ)
                reached.add(succ)
                frontier.append((succ, depth + 1))
    return reached


def neighbourhood_sizes(view: GraphView, start: Node,
                        max_k: int) -> List[int]:
    """``[|N_1|, |N_2|, ..., |N_max_k|]`` cumulative k-hop sizes."""
    return [len(k_hop_neighbourhood(view, start, k))
            for k in range(1, max_k + 1)]


def common_neighbours(view: GraphView, a: Node, b: Node,
                      direction: str = "out") -> Set[Node]:
    """Vertices adjacent to both ``a`` and ``b``.

    :param direction: ``"out"`` (successors of both), ``"in"``
        (predecessors of both -- computed by scanning, views have no
        predecessor index) or ``"any"``.
    """
    if direction not in ("out", "in", "any"):
        raise ValueError(f"direction must be 'out'/'in'/'any', got {direction!r}")
    if direction == "out":
        shared = set(view.successors(a)) & set(view.successors(b))
    elif direction == "in":
        shared = {node for node in view.nodes()
                  if view.has_edge(node, a) and view.has_edge(node, b)}
    else:
        out_a = set(view.successors(a))
        out_b = set(view.successors(b))
        in_a = {n for n in view.nodes() if view.has_edge(n, a)}
        in_b = {n for n in view.nodes() if view.has_edge(n, b)}
        shared = (out_a | in_a) & (out_b | in_b)
    shared.discard(a)
    shared.discard(b)
    return shared


def jaccard_similarity(view: GraphView, a: Node, b: Node) -> float:
    """Neighbourhood Jaccard similarity of two vertices (out-edges).

    A standard link-prediction feature; on a sketch it compares
    super-node neighbourhoods, which over-merge but preserve strong
    similarity signals.
    """
    neighbours_a = set(view.successors(a))
    neighbours_b = set(view.successors(b))
    union = neighbours_a | neighbours_b
    if not union:
        return 0.0
    return len(neighbours_a & neighbours_b) / len(union)
