"""Subgraph matching on graph views (the ``subgraph()`` black box, §4.4).

Evaluates a :class:`~repro.core.queries.SubgraphQuery` against any
:class:`~repro.analytics.views.GraphView` by backtracking over variable
assignments:

- constant terms are pinned to the view node they map to;
- each *free* wildcard occurrence is an independent variable;
- bound wildcards with equal tags share one variable (paper query Q6).

A match is an assignment under which every query edge exists with positive
weight; its weight is the sum of its constituent edge weights, and
``subgraph_weight`` totals that over all distinct matches.  For a query
with no wildcards this collapses to the paper's base semantics: the sum of
the explicit edges' weights, or 0 if any edge is missing.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analytics.views import GraphView, Node
from repro.core.queries import (
    BoundWildcard,
    QueryEdge,
    SubgraphQuery,
    Term,
    Wildcard,
    is_wildcard,
)

# A resolved query edge: each endpoint is either ("const", node) or
# ("var", variable-id).
_Endpoint = Tuple[str, object]


def _resolve_terms(query: SubgraphQuery,
                   node_of: Callable[[object], Node]) -> Tuple[List[Tuple[_Endpoint, _Endpoint]], int]:
    """Rewrite query terms into constants / variable ids.

    Returns the rewritten edges and the number of variables.
    """
    var_ids: Dict[str, int] = {}
    free_counter = itertools.count()
    edges: List[Tuple[_Endpoint, _Endpoint]] = []

    def endpoint(term: Term) -> _Endpoint:
        if isinstance(term, BoundWildcard):
            if term.tag not in var_ids:
                var_ids[term.tag] = len(var_ids)
            return ("var", var_ids[term.tag])
        if isinstance(term, Wildcard):
            # A fresh variable per free-wildcard occurrence.
            var_ids[f"__free_{next(free_counter)}"] = len(var_ids)
            return ("var", len(var_ids) - 1)
        return ("const", node_of(term))

    for a, b in query:
        edges.append((endpoint(a), endpoint(b)))
    return edges, len(var_ids)


def match_subgraph(view: GraphView, query: SubgraphQuery,
                   node_of: Optional[Callable[[object], Node]] = None,
                   max_matches: Optional[int] = None) -> Iterator[Dict[int, Node]]:
    """Yield variable assignments (var-id -> view node) for every match.

    Queries without wildcards yield at most one (empty) assignment.

    :param node_of: maps query constants to view nodes; identity for exact
        stream views, ``SketchView.node_of`` for sketches.
    :param max_matches: stop after this many matches (guards against
        explosion on dense compressed sketches).
    """
    node_of = node_of if node_of is not None else (lambda label: label)
    edges, n_vars = _resolve_terms(query, node_of)

    # Order edges so that each new edge shares as many already-bound
    # variables as possible (cheap greedy join ordering).
    ordered: List[Tuple[_Endpoint, _Endpoint]] = []
    remaining = list(edges)
    bound_vars: set = set()
    while remaining:
        def bound_count(edge: Tuple[_Endpoint, _Endpoint]) -> int:
            score = 0
            for kind, value in edge:
                if kind == "const" or value in bound_vars:
                    score += 1
            return score
        best = max(remaining, key=bound_count)
        remaining.remove(best)
        ordered.append(best)
        for kind, value in best:
            if kind == "var":
                bound_vars.add(value)

    yielded = 0

    def backtrack(index: int, assignment: Dict[int, Node]) -> Iterator[Dict[int, Node]]:
        nonlocal yielded
        if max_matches is not None and yielded >= max_matches:
            return
        if index == len(ordered):
            yielded += 1
            yield dict(assignment)
            return
        (src_kind, src_val), (dst_kind, dst_val) = ordered[index]

        def src_candidates() -> Sequence[Node]:
            if src_kind == "const":
                return [src_val]
            if src_val in assignment:
                return [assignment[src_val]]
            return list(view.nodes())

        for src in src_candidates():
            src_was_new = src_kind == "var" and src_val not in assignment
            if src_was_new:
                assignment[src_val] = src

            if dst_kind == "const":
                dst_options: Sequence[Node] = [dst_val]
            elif dst_val in assignment:
                dst_options = [assignment[dst_val]]
            else:
                dst_options = list(view.successors(src))

            for dst in dst_options:
                if view.edge_weight(src, dst) <= 0:
                    continue
                dst_was_new = dst_kind == "var" and dst_val not in assignment
                if dst_was_new:
                    assignment[dst_val] = dst
                yield from backtrack(index + 1, assignment)
                if dst_was_new:
                    del assignment[dst_val]
                if max_matches is not None and yielded >= max_matches:
                    break
            if src_was_new:
                del assignment[src_val]
            if max_matches is not None and yielded >= max_matches:
                break

    yield from backtrack(0, {})


def subgraph_weight(view: GraphView, query: SubgraphQuery,
                    node_of: Optional[Callable[[object], Node]] = None,
                    max_matches: Optional[int] = None) -> float:
    """Aggregate subgraph weight ``f_g(Q)`` on one view (step S1, §4.4).

    Sum, over every match, of the match's constituent edge weights.  For
    wildcard-free queries this is the paper's base semantics (0 when the
    query graph has no exact match).
    """
    node_of = node_of if node_of is not None else (lambda label: label)
    edges, _ = _resolve_terms(query, node_of)
    total = 0.0
    for assignment in match_subgraph(view, query, node_of, max_matches):
        for (src_kind, src_val), (dst_kind, dst_val) in edges:
            src = src_val if src_kind == "const" else assignment[src_val]
            dst = dst_val if dst_kind == "const" else assignment[dst_val]
            total += view.edge_weight(src, dst)
    return total
