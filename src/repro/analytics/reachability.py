"""Reachability as a black-box algorithm (paper Section 4.3, step P1).

``reach(view, a, b)`` is the off-the-shelf primitive the paper invokes per
sketch; the TCM layer conjoins the per-sketch answers (step P2).
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Sequence, Set, Tuple

import numpy as np

from repro.analytics.views import GraphView, Node, SketchView


def reach(view: GraphView, source: Node, target: Node,
          max_hops: Optional[int] = None) -> bool:
    """BFS reachability from ``source`` to ``target`` on any graph view.

    :param max_hops: optional hop bound, turning the query into
        "reachable within k hops" (useful for bounded monitoring).
    """
    if source == target:
        return True
    frontier = deque([(source, 0)])
    visited: Set[Node] = {source}
    while frontier:
        node, depth = frontier.popleft()
        if max_hops is not None and depth >= max_hops:
            continue
        for succ in view.successors(node):
            if succ == target:
                return True
            if succ not in visited:
                visited.add(succ)
                frontier.append((succ, depth + 1))
    return False


def reach_many(view: SketchView,
               pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
    """Batched unbounded reachability over one sketch view.

    Builds the sketch's connectivity index (components + transitive
    closure, see :func:`repro.core.query_engine.build_connectivity_index`)
    once and probes it per pair -- element-wise identical to calling
    :func:`reach` without a hop bound, but O(1) per pair after the build.
    Callers that query repeatedly should go through ``TCM.reachable_many``
    instead, which additionally caches the index across calls.
    """
    from repro.core.query_engine import build_connectivity_index

    if len(pairs) == 0:
        return np.zeros(0, dtype=bool)
    index = build_connectivity_index(view.sketch)
    sources = np.asarray([s for s, _ in pairs], dtype=np.int64)
    targets = np.asarray([t for _, t in pairs], dtype=np.int64)
    return index.query_many(sources, targets)
