"""Reachability as a black-box algorithm (paper Section 4.3, step P1).

``reach(view, a, b)`` is the off-the-shelf primitive the paper invokes per
sketch; the TCM layer conjoins the per-sketch answers (step P2).
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Set

from repro.analytics.views import GraphView, Node


def reach(view: GraphView, source: Node, target: Node,
          max_hops: Optional[int] = None) -> bool:
    """BFS reachability from ``source`` to ``target`` on any graph view.

    :param max_hops: optional hop bound, turning the query into
        "reachable within k hops" (useful for bounded monitoring).
    """
    if source == target:
        return True
    frontier = deque([(source, 0)])
    visited: Set[Node] = {source}
    while frontier:
        node, depth = frontier.popleft()
        if max_hops is not None and depth >= max_hops:
            continue
        for succ in view.successors(node):
            if succ == target:
                return True
            if succ not in visited:
                visited.add(succ)
                frontier.append((succ, depth + 1))
    return False
