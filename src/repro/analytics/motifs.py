"""Small-motif census on graph views.

Triangles are one corner of the triad census; network analysis also leans
on wedges (length-2 paths), feed-forward versus cyclic triads, and
reciprocated pairs.  These run on exact streams and on sketches like all
view algorithms; on sketches the counts are collision-distorted in both
directions (see :mod:`repro.analytics.triangles`), but relative motif
profiles remain a useful fingerprint of the summarized graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set

from repro.analytics.views import GraphView, Node


@dataclass(frozen=True)
class TriadCensus:
    """Counts of the directed 3-node motifs this module distinguishes."""

    wedges_out: int        # a -> b, a -> c   (common source)
    wedges_in: int         # b -> a, c -> a   (common target)
    paths: int             # a -> b -> c      (chain, no closing edge)
    feed_forward: int      # a -> b -> c with a -> c
    cycles: int            # a -> b -> c -> a

    @property
    def closure_ratio(self) -> float:
        """Fraction of chains that close into any triangle motif."""
        open_chains = self.paths + self.feed_forward + self.cycles
        if open_chains == 0:
            return 0.0
        return (self.feed_forward + self.cycles) / open_chains


def count_reciprocated_pairs(view: GraphView) -> int:
    """Unordered pairs with edges in both directions."""
    count = 0
    for node in view.nodes():
        for succ in view.successors(node):
            if succ == node:
                continue
            if repr(succ) > repr(node) and view.has_edge(succ, node):
                count += 1
    return count


def count_wedges(view: GraphView, kind: str = "out") -> int:
    """Length-2 stars: ``out`` = common source, ``in`` = common target."""
    if kind not in ("out", "in"):
        raise ValueError(f"kind must be 'out' or 'in', got {kind!r}")
    if kind == "out":
        degrees = [len([s for s in view.successors(node) if s != node])
                   for node in view.nodes()]
    else:
        incoming: Dict[Node, int] = {}
        for node in view.nodes():
            for succ in view.successors(node):
                if succ != node:
                    incoming[succ] = incoming.get(succ, 0) + 1
        degrees = list(incoming.values())
    return sum(d * (d - 1) // 2 for d in degrees)


def triad_census(view: GraphView) -> TriadCensus:
    """Count the directed 3-node motifs of the view.

    Chains ``a -> b -> c`` (a, b, c distinct) are classified by their
    closing edge: none (`paths`), ``a -> c`` (`feed_forward`) or
    ``c -> a`` (`cycles`, counted once per cyclic triangle).  A chain
    whose closure has *both* edges counts toward both closed motifs.
    """
    paths = feed_forward = cycle_chains = 0
    successors: Dict[Node, Set[Node]] = {
        node: {s for s in view.successors(node) if s != node}
        for node in view.nodes()
    }
    for a in successors:
        for b in successors[a]:
            for c in successors.get(b, ()):
                if c == a or c == b:
                    continue
                closing_forward = c in successors[a]
                closing_back = a in successors.get(c, ())
                if closing_forward:
                    feed_forward += 1
                if closing_back:
                    cycle_chains += 1
                if not closing_forward and not closing_back:
                    paths += 1
    return TriadCensus(
        wedges_out=count_wedges(view, "out"),
        wedges_in=count_wedges(view, "in"),
        paths=paths,
        feed_forward=feed_forward,
        cycles=cycle_chains // 3,  # each cyclic triangle has 3 chains
    )
