"""Ingest-engine throughput benchmark: per-edge vs chunked vs parallel.

Measures elements/second on an R-MAT stream for the build paths a
deployment picks from, focusing on the configurations that were
Python-loop-bound before the chunked engine (min/max aggregation and
conservative update), and probes that chunked ingest's peak RSS does not
grow with stream length (the constant-memory claim).  Writes the
committed ``BENCH_ingest_throughput.json`` record::

    python -m repro.perf.ingest_bench --out BENCH_ingest_throughput.json

Methodology: edge endpoints are pre-generated and pre-materialized
(plain tuples for the per-edge loops, :class:`StreamEdge` objects for
the bulk paths) so every mode pays the same generation cost: none.
Chunked modes consume a fresh iterator over the prebuilt elements
through the public ``ingest``/``ingest_conservative`` interface --
paying real chunking, attribute-extraction, hashing and scatter costs
-- and parallel modes go through :class:`ParallelTCMBuilder`.  RSS
probes run in fresh child processes so ``ru_maxrss`` reflects one build
only.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import platform
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.aggregation import Aggregation
from repro.core.tcm import TCM
from repro.distributed.parallel import ParallelTCMBuilder
from repro.streams.generators import rmat_edges
from repro.streams.model import StreamEdge


def _edge_arrays(n_nodes: int, n_edges: int,
                 seed: int) -> Tuple[np.ndarray, np.ndarray]:
    """Materialize the R-MAT endpoint arrays once (16B/edge)."""
    src = np.empty(n_edges, dtype=np.int64)
    dst = np.empty(n_edges, dtype=np.int64)
    for i, edge in enumerate(rmat_edges(n_nodes, n_edges, seed=seed)):
        src[i] = edge.source
        dst[i] = edge.target
    return src, dst


def _edge_objects(src: np.ndarray, dst: np.ndarray) -> List[StreamEdge]:
    """Materialize the element objects once, outside every timed region."""
    return [StreamEdge(s, t, 1.0, 0.0)
            for s, t in zip(src.tolist(), dst.tolist())]


def _rate(n: int, seconds: float) -> float:
    return n / seconds if seconds > 0 else float("inf")


def measure_throughput(n_edges: int, n_nodes: int, d: int, width: int,
                       seed: int, chunk_size: int, workers: int,
                       baseline_edges: Optional[int] = None) -> Dict:
    """Elements/second per build path, on one shared R-MAT edge set."""
    src, dst = _edge_arrays(n_nodes, n_edges, seed)
    n_base = min(baseline_edges or n_edges, n_edges)
    base_pairs: List[Tuple[int, int]] = list(
        zip(src[:n_base].tolist(), dst[:n_base].tolist()))
    edges = _edge_objects(src, dst)

    rates: Dict[str, float] = {}

    def timed(name: str, n: int, build) -> None:
        start = time.perf_counter()
        build()
        rates[name] = _rate(n, time.perf_counter() - start)

    def per_edge(aggregation: Aggregation):
        tcm = TCM(d=d, width=width, seed=seed, aggregation=aggregation)
        update = tcm.update
        for s, t in base_pairs:
            update(s, t, 1.0)

    def per_edge_conservative():
        tcm = TCM(d=d, width=width, seed=seed)
        update = tcm.update_conservative
        for s, t in base_pairs:
            update(s, t, 1.0)

    def chunked(aggregation: Aggregation):
        TCM(d=d, width=width, seed=seed, aggregation=aggregation).ingest(
            iter(edges), chunk_size=chunk_size)

    def chunked_conservative():
        TCM(d=d, width=width, seed=seed).ingest_conservative(
            iter(edges), chunk_size=chunk_size)

    parallel_modes: Dict[str, str] = {}

    def parallel(aggregation: Aggregation, mode_key: str):
        builder = ParallelTCMBuilder(
            workers=workers, chunk_size=chunk_size, d=d, width=width,
            seed=seed, aggregation=aggregation,
            # The bench measures the multiprocess transports themselves;
            # the honest single-core fallback would measure chunked twice
            # (domination is recorded separately in parallel_vs_chunked).
            single_core_fallback=False)
        builder.build(iter(edges))
        parallel_modes[mode_key] = builder.last_build_info["mode"]

    timed("per_edge_sum", n_base, lambda: per_edge(Aggregation.SUM))
    timed("per_edge_min", n_base, lambda: per_edge(Aggregation.MIN))
    timed("per_edge_conservative", n_base, per_edge_conservative)
    timed("chunked_sum", n_edges, lambda: chunked(Aggregation.SUM))
    timed("chunked_min", n_edges, lambda: chunked(Aggregation.MIN))
    timed("chunked_max", n_edges, lambda: chunked(Aggregation.MAX))
    timed("chunked_conservative", n_edges, chunked_conservative)
    if workers > 1:
        timed("parallel_sum", n_edges,
              lambda: parallel(Aggregation.SUM, "parallel_sum"))
        timed("parallel_min", n_edges,
              lambda: parallel(Aggregation.MIN, "parallel_min"))
    result = {
        "rates_elements_per_sec": {k: round(v, 1) for k, v in rates.items()},
        "baseline_edges": n_base,
        "speedup_vs_per_edge": {
            "min": round(rates["chunked_min"] / rates["per_edge_min"], 2),
            "conservative": round(rates["chunked_conservative"]
                                  / rates["per_edge_conservative"], 2),
            "sum": round(rates["chunked_sum"] / rates["per_edge_sum"], 2),
            **({"parallel_min": round(rates["parallel_min"]
                                      / rates["per_edge_min"], 2),
                "parallel_sum": round(rates["parallel_sum"]
                                      / rates["per_edge_sum"], 2)}
               if workers > 1 else {}),
        },
    }
    if workers > 1:
        # Whether fanning out beats the single-process chunked engine on
        # this machine; on a single hardware core the answer is honestly
        # "no" (process setup + merge with zero extra parallelism), which
        # is exactly what the record should say.
        result["parallel_vs_chunked"] = {
            "transport": parallel_modes,
            "sum_ratio": round(rates["parallel_sum"]
                               / rates["chunked_sum"], 3),
            "min_ratio": round(rates["parallel_min"]
                               / rates["chunked_min"], 3),
            "sum_dominates": rates["parallel_sum"] >= rates["chunked_sum"],
            "min_dominates": rates["parallel_min"] >= rates["chunked_min"],
        }
    return result


def _rss_probe(n_nodes: int, n_edges: int, d: int, width: int, seed: int,
               chunk_size: int, queue) -> None:
    """Child-process body: one chunked build, report peak RSS in KiB."""
    import resource

    TCM(d=d, width=width, seed=seed, aggregation=Aggregation.MIN).ingest(
        rmat_edges(n_nodes, n_edges, seed=seed), chunk_size=chunk_size)
    queue.put(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def measure_rss(n_edges: int, n_nodes: int, d: int, width: int, seed: int,
                chunk_size: int) -> Dict:
    """Peak RSS of a chunked build at 1x vs 4x stream length.

    A constant-memory engine should show near-identical peaks: the
    sketch matrices and one in-flight chunk dominate, the stream length
    contributes nothing.  Each probe runs in a fresh child so
    ``ru_maxrss`` is per-build, not cumulative.
    """
    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods()
        else None)
    peaks: Dict[str, int] = {}
    for label, n in (("short_stream", max(1, n_edges // 4)),
                     ("long_stream", n_edges)):
        queue = ctx.Queue()
        process = ctx.Process(
            target=_rss_probe,
            args=(n_nodes, n, d, width, seed, chunk_size, queue))
        process.start()
        peaks[label] = queue.get()
        process.join()
    return {
        "peak_rss_kib": peaks,
        "stream_length_ratio": 4.0,
        "rss_ratio": round(peaks["long_stream"]
                           / max(1, peaks["short_stream"]), 3),
        "claim": "chunked ingest peak RSS is independent of stream length",
    }


def run(n_edges: int = 1_000_000, n_nodes: int = 65536, d: int = 4,
        width: int = 256, seed: int = 7, chunk_size: int = 65536,
        workers: Optional[int] = None,
        baseline_edges: Optional[int] = None,
        skip_rss: bool = False) -> Dict:
    import os

    from repro.core import kernels

    resolved_workers = workers if workers is not None \
        else max(1, os.cpu_count() or 1)
    record: Dict = {
        "benchmark": "ingest engine throughput (per-edge vs chunked vs "
                     "parallel) on an R-MAT stream",
        "config": {"n_edges": n_edges, "n_nodes": n_nodes, "d": d,
                   "width": width, "seed": seed, "chunk_size": chunk_size,
                   "workers": resolved_workers,
                   "kernel_backend": kernels.active_backend(),
                   "cpu_count": os.cpu_count() or 1,
                   "python": platform.python_version(),
                   "machine": platform.machine()},
        "target": "chunked SUM >= 5x per-edge via the kernel layer's "
                  "buffered bincount scatter; min/max/conservative >= 3x",
    }
    record.update(measure_throughput(n_edges, n_nodes, d, width, seed,
                                     chunk_size, resolved_workers,
                                     baseline_edges))
    if not skip_rss:
        record["memory"] = measure_rss(n_edges, n_nodes, d, width, seed,
                                       chunk_size)
    return record


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark the chunked/parallel ingest engine")
    parser.add_argument("--edges", type=int, default=1_000_000)
    parser.add_argument("--nodes", type=int, default=65536)
    parser.add_argument("--d", type=int, default=4)
    parser.add_argument("--width", type=int, default=256)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--chunk-size", type=int, default=65536)
    parser.add_argument("--workers", type=int, default=None,
                        help="parallel worker count (default: CPU count)")
    parser.add_argument("--baseline-edges", type=int, default=None,
                        help="edges for the per-edge baselines (default: "
                             "all of --edges; rates stay comparable)")
    parser.add_argument("--skip-rss", action="store_true",
                        help="skip the child-process RSS probes")
    parser.add_argument("--out", default=None,
                        help="write the JSON record here (default: stdout)")
    args = parser.parse_args(argv)

    record = run(n_edges=args.edges, n_nodes=args.nodes, d=args.d,
                 width=args.width, seed=args.seed,
                 chunk_size=args.chunk_size, workers=args.workers,
                 baseline_edges=args.baseline_edges,
                 skip_rss=args.skip_rss)
    text = json.dumps(record, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        speedups = record["speedup_vs_per_edge"]
        print(f"wrote {args.out} (chunked min speedup: "
              f"{speedups['min']}x, conservative: "
              f"{speedups['conservative']}x)")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
