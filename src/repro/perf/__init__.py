"""Performance harnesses for the ingest engine.

The committed-baseline pattern (like ``BENCH_obs_overhead.json``): run
::

    python -m repro.perf.ingest_bench --out BENCH_ingest_throughput.json
    # or: make bench-ingest

to re-measure elements/second for the per-edge, chunked-vectorized and
parallel-sharded build paths on an R-MAT stream, plus peak-RSS probes
showing chunked ingest memory is independent of stream length.  The JSON
record is committed so regressions show up in review diffs; CI runs the
same harness on a small stream as a smoke test.

Engine architecture and chunk-size guidance: docs/PERFORMANCE.md.
"""
