"""repro.obs: metrics, tracing and sketch-health introspection.

The observability layer for the TCM system.  Quickstart::

    from repro import obs

    obs.enable()                       # counters/spans start moving
    tcm.ingest(stream)                 # instrumented automatically
    print(obs.render_prometheus())     # scrape-compatible text
    print(obs.json_snapshot(tcms={"main": tcm}))   # metrics+spans+health

    health = obs.tcm_health(tcm)       # load factor, collisions, nbytes
    for line in obs.saturation_warnings(health):
        print(line)

Continuous *accuracy* telemetry (shadow truth, drift detection), runtime
sampling (RSS/GC/latency quantiles), and the flight recorder live in
:mod:`repro.obs.accuracy`, :mod:`repro.obs.runtime` and
:mod:`repro.obs.flight`::

    tracker = obs.AccuracyTracker(tcm, flight=obs.FLIGHT)
    tracker.observe_columns(sources, targets, weights)   # next to ingest
    report = tracker.tick()            # ARE/epsilon/FPR gauges + drift
    sampler = obs.RuntimeSampler(); sampler.sample()
    print(obs.FLIGHT.dump_json())      # the post-mortem black box

Everything is process-local and dependency-free; instrumentation costs
~one attribute lookup per hot-path call while disabled (the default) and
well under 5% of TCM's per-element update cost while enabled -- see
``BENCH_obs_overhead.json`` and docs/OBSERVABILITY.md.
"""

from repro.obs.accuracy import (
    AccuracyReport,
    AccuracyTracker,
    DriftDetector,
    DriftEvent,
    PageHinkley,
    RotatingShadowTruth,
    ShadowTruthComparator,
    shadow_truth_for,
)
from repro.obs.export import (
    PeriodicReporter,
    json_snapshot,
    metrics_snapshot,
    publish_health,
    render_prometheus,
)
from repro.obs.flight import FLIGHT, FlightEvent, FlightRecorder
from repro.obs.health import (
    SketchHealth,
    TCMHealth,
    distributed_health,
    saturation_warnings,
    sketch_health,
    tcm_health,
)
from repro.obs.instruments import OBS, REGISTRY, disable, enable, is_enabled
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
)
from repro.obs.runtime import (
    RuntimeSample,
    RuntimeSampler,
    latency_quantiles,
    rss_bytes,
    rss_slope,
)
from repro.obs.tracing import Span, Tracer, TRACER, span

__all__ = [
    "FLIGHT",
    "OBS",
    "REGISTRY",
    "TRACER",
    "AccuracyReport",
    "AccuracyTracker",
    "Counter",
    "DriftDetector",
    "DriftEvent",
    "FlightEvent",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PageHinkley",
    "PeriodicReporter",
    "RotatingShadowTruth",
    "RuntimeSample",
    "RuntimeSampler",
    "ShadowTruthComparator",
    "SketchHealth",
    "Span",
    "TCMHealth",
    "Tracer",
    "disable",
    "distributed_health",
    "enable",
    "is_enabled",
    "json_snapshot",
    "latency_quantiles",
    "log_buckets",
    "metrics_snapshot",
    "publish_health",
    "render_prometheus",
    "rss_bytes",
    "rss_slope",
    "saturation_warnings",
    "shadow_truth_for",
    "sketch_health",
    "span",
    "tcm_health",
]
