"""repro.obs: metrics, tracing and sketch-health introspection.

The observability layer for the TCM system.  Quickstart::

    from repro import obs

    obs.enable()                       # counters/spans start moving
    tcm.ingest(stream)                 # instrumented automatically
    print(obs.render_prometheus())     # scrape-compatible text
    print(obs.json_snapshot(tcms={"main": tcm}))   # metrics+spans+health

    health = obs.tcm_health(tcm)       # load factor, collisions, nbytes
    for line in obs.saturation_warnings(health):
        print(line)

Everything is process-local and dependency-free; instrumentation costs
~one attribute lookup per hot-path call while disabled (the default) and
well under 5% of TCM's per-element update cost while enabled -- see
``BENCH_obs_overhead.json`` and docs/OBSERVABILITY.md.
"""

from repro.obs.export import (
    PeriodicReporter,
    json_snapshot,
    metrics_snapshot,
    publish_health,
    render_prometheus,
)
from repro.obs.health import (
    SketchHealth,
    TCMHealth,
    distributed_health,
    saturation_warnings,
    sketch_health,
    tcm_health,
)
from repro.obs.instruments import OBS, REGISTRY, disable, enable, is_enabled
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
)
from repro.obs.tracing import Span, Tracer, TRACER, span

__all__ = [
    "OBS",
    "REGISTRY",
    "TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PeriodicReporter",
    "SketchHealth",
    "Span",
    "TCMHealth",
    "Tracer",
    "disable",
    "distributed_health",
    "enable",
    "is_enabled",
    "json_snapshot",
    "log_buckets",
    "metrics_snapshot",
    "publish_health",
    "render_prometheus",
    "saturation_warnings",
    "sketch_health",
    "span",
    "tcm_health",
]
