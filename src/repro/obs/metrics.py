"""Process-local metrics: counters, gauges and log-bucket histograms.

The registry is deliberately tiny -- no sockets, no threads, no external
dependencies -- because the point is to make the TCM trade-off (accuracy
vs space vs throughput) *visible* without distorting it.  Three metric
types cover every signal the system emits:

- :class:`Counter` -- monotonically increasing totals (elements ingested,
  evictions, bytes replayed).
- :class:`Gauge` -- point-in-time values (sketch load factor, shard
  count, memory footprint).
- :class:`Histogram` -- distributions over fixed **log-scale** buckets
  (query latencies spanning microseconds to seconds fit a multiplicative
  grid; a linear grid would waste every bucket on one decade).

Metrics may declare *label names* and fan out into labeled children via
:meth:`~Metric.labels`, mirroring the Prometheus data model so the text
exposition in :mod:`repro.obs.export` is scrape-compatible.

Hot-path cost: an un-labeled ``Counter.inc()`` is one attribute add.
Whether to call it at all is decided by the single ``OBS.enabled``
attribute check in the instrumented code (see
:mod:`repro.obs.instruments`), so disabled instrumentation costs ~one
attribute lookup and a branch.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


def log_buckets(minimum: float = 1e-6, maximum: float = 10.0,
                per_decade: int = 2) -> Tuple[float, ...]:
    """Fixed log-scale bucket upper bounds from ``minimum`` to ``maximum``.

    ``per_decade`` bounds per power of ten; the implicit ``+Inf`` bucket
    is always appended by :class:`Histogram`.

    >>> log_buckets(1e-2, 1.0, per_decade=1)
    (0.01, 0.1, 1.0)
    """
    if minimum <= 0 or maximum <= minimum:
        raise ValueError(f"need 0 < minimum < maximum, "
                         f"got [{minimum}, {maximum}]")
    if per_decade < 1:
        raise ValueError(f"per_decade must be >= 1, got {per_decade}")
    lo = round(math.log10(minimum) * per_decade)
    hi = round(math.log10(maximum) * per_decade)
    return tuple(10.0 ** (e / per_decade) for e in range(lo, hi + 1))


#: Default latency grid: 1 microsecond to 10 seconds, half-decade steps.
DEFAULT_LATENCY_BUCKETS = log_buckets(1e-6, 10.0, per_decade=2)


class Metric:
    """Base class: name, help text and the labeled-children machinery.

    A metric created *with* ``labelnames`` is a family; operating on the
    family directly raises -- call :meth:`labels` to get (or lazily
    create) the child for one label combination.  A metric created
    without label names is its own single child.
    """

    TYPE = "untyped"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: Dict[Tuple[str, ...], "Metric"] = {}
        self.labelvalues: Tuple[str, ...] = ()

    def labels(self, *values) -> "Metric":
        """The child metric for one combination of label values."""
        if not self.labelnames:
            raise ValueError(f"{self.name} was declared without labels")
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects {len(self.labelnames)} label values "
                f"{self.labelnames}, got {len(values)}")
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            child.labelvalues = key
            self._children[key] = child
        return child

    def _make_child(self) -> "Metric":
        raise NotImplementedError

    def children(self) -> Iterator["Metric"]:
        """All concrete (value-bearing) metrics under this family."""
        if self.labelnames:
            for key in sorted(self._children):
                yield self._children[key]
        else:
            yield self

    def _check_leaf(self) -> None:
        if self.labelnames:
            raise ValueError(
                f"{self.name} has labels {self.labelnames}; "
                "call .labels(...) first")

    def reset(self) -> None:
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing total."""

    TYPE = "counter"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = ()):
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def _make_child(self) -> "Counter":
        return Counter(self.name, self.help)

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        self._check_leaf()
        self._value += amount

    @property
    def value(self) -> float:
        if self.labelnames:
            return sum(c._value for c in self._children.values())
        return self._value

    def reset(self) -> None:
        self._value = 0.0
        self._children.clear()


class Gauge(Metric):
    """A value that can go up and down (or be set outright)."""

    TYPE = "gauge"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = ()):
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def _make_child(self) -> "Gauge":
        return Gauge(self.name, self.help)

    def set(self, value: float) -> None:
        self._check_leaf()
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._check_leaf()
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._check_leaf()
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self._value = 0.0
        self._children.clear()


class Histogram(Metric):
    """Counts of observations over fixed log-scale buckets.

    Buckets are *cumulative upper bounds* (Prometheus ``le`` semantics)
    with an implicit ``+Inf`` bucket, plus a running sum and count so
    mean latency falls out of any snapshot.

    >>> h = Histogram("t", buckets=(0.01, 0.1, 1.0))
    >>> h.observe(0.05); h.observe(0.5); h.observe(5.0)
    >>> h.count, h.bucket_counts
    (3, [0, 1, 2, 3])
    """

    TYPE = "histogram"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Optional[Sequence[float]] = None):
        super().__init__(name, help, labelnames)
        bounds = tuple(buckets if buckets is not None
                       else DEFAULT_LATENCY_BUCKETS)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must be sorted and non-empty")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # trailing +Inf bucket
        self._sum = 0.0
        self._count = 0

    def _make_child(self) -> "Histogram":
        return Histogram(self.name, self.help, buckets=self.buckets)

    def observe(self, value: float) -> None:
        self._check_leaf()
        self._counts[bisect_left(self.buckets, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        if self.labelnames:
            return sum(c._count for c in self._children.values())
        return self._count

    @property
    def sum(self) -> float:
        if self.labelnames:
            return sum(c._sum for c in self._children.values())
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def bucket_counts(self) -> List[int]:
        """Cumulative counts per bucket (``le`` semantics, +Inf last)."""
        out, running = [], 0
        for n in self._counts:
            running += n
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        the ``q``-th observation falls in; +Inf bucket reports the top
        finite bound)."""
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        rank = q * self._count
        running = 0
        for i, n in enumerate(self._counts):
            running += n
            if running >= rank:
                return (self.buckets[i] if i < len(self.buckets)
                        else self.buckets[-1])
        return self.buckets[-1]

    def reset(self) -> None:
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0
        self._children.clear()


class MetricsRegistry:
    """Owns every metric family; the unit of export and reset.

    Re-declaring a name returns the existing family when the type and
    labels match (so instrumented modules can declare idempotently) and
    raises on any mismatch.
    """

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}

    def _register(self, cls, name: str, help: str,
                  labelnames: Sequence[str], **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if (type(existing) is not cls
                    or existing.labelnames != tuple(labelnames)):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.TYPE}{existing.labelnames}")
            return existing
        metric = cls(name, help, labelnames, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        return self._register(Histogram, name, help, labelnames,
                              buckets=buckets)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def collect(self) -> List[Metric]:
        """Every registered family, name-sorted (stable export order)."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def reset(self) -> None:
        """Zero every value; registrations (and handles) survive."""
        for metric in self._metrics.values():
            metric.reset()

    def clear(self) -> None:
        """Drop registrations entirely (tests only -- cached handles in
        instrumented modules would go stale)."""
        self._metrics.clear()

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)
