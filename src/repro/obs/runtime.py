"""Runtime telemetry: RSS + GC sampling and latency quantile readouts.

The soak gate (ROADMAP item 5, ``benchmarks/bench_soak.py``) needs three
runtime signals next to the accuracy gauges:

- **RSS over time** -- a summary whose memory is genuinely bounded shows
  a flat resident-set trend once warmed up; a leak (an unbounded buffer,
  a cache that never clears) shows as a positive slope.
  :class:`RuntimeSampler` reads ``VmRSS`` from ``/proc/self/status``
  (falling back to ``resource.getrusage`` off Linux; ``psutil`` is
  deliberately not a dependency) and fits a least-squares slope over the
  sampled series.
- **GC pressure** -- collection counts per generation, differenced into
  the ``process_gc_collections_total`` counter.  A hot loop that churns
  temporaries shows up here before it shows up in latency.
- **Latency quantiles** -- p50/p99 readouts computed from the log-bucket
  :class:`~repro.obs.metrics.Histogram` families already populated by the
  instrumented query/ingest paths; :func:`latency_quantiles` is the
  one-call summary the benchmark gate and ``tcm obs`` print.
"""

from __future__ import annotations

import gc
import os
import re
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.instruments import OBS, REGISTRY
from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = [
    "RuntimeSampler",
    "RuntimeSample",
    "latency_quantiles",
    "rss_bytes",
    "rss_slope",
]

_VMRSS_RE = re.compile(rb"^VmRSS:\s+(\d+)\s+kB", re.MULTILINE)


def rss_bytes() -> int:
    """Resident set size of this process, in bytes.

    Prefers ``/proc/self/status`` (exact, Linux); falls back to
    ``resource.getrusage`` (``ru_maxrss`` -- a high-water mark, still
    monotone enough for slope fitting) elsewhere.  Returns 0 when neither
    source is available.
    """
    try:
        with open("/proc/self/status", "rb") as f:
            match = _VMRSS_RE.search(f.read())
        if match:
            return int(match.group(1)) * 1024
    except OSError:
        pass
    try:
        import resource
        usage = resource.getrusage(resource.RUSAGE_SELF)
        # Linux reports kilobytes, macOS bytes.
        scale = 1 if usage.ru_maxrss > (1 << 32) else 1024
        return int(usage.ru_maxrss) * scale
    except Exception:
        return 0


def rss_slope(times: List[float], rss: List[int]) -> float:
    """Least-squares slope of an RSS series, in bytes per second.

    The soak gate asserts this stays under a small ceiling once the run
    is past warm-up ("flat-RSS slope").  Returns 0 for fewer than two
    samples or a degenerate time axis.
    """
    n = len(times)
    if n < 2 or len(rss) != n:
        return 0.0
    mean_t = sum(times) / n
    mean_r = sum(rss) / n
    var_t = sum((t - mean_t) ** 2 for t in times)
    if var_t == 0:
        return 0.0
    cov = sum((t - mean_t) * (r - mean_r) for t, r in zip(times, rss))
    return cov / var_t


def latency_quantiles(registry: MetricsRegistry = REGISTRY,
                      quantiles: tuple = (0.5, 0.99)) -> Dict[str, Dict[str, float]]:
    """p50/p99 (or any quantile set) for every populated histogram.

    Keys are ``family`` or ``family{label=value,...}`` for labeled
    children; values map ``"p50"``-style names to the log-bucket upper
    bound holding that rank (see :meth:`Histogram.quantile` for the
    estimator's bucket-resolution error bound).
    """
    out: Dict[str, Dict[str, float]] = {}
    for family in registry.collect():
        for metric in family.children():
            if not isinstance(metric, Histogram) or metric.count == 0:
                continue
            key = family.name
            if metric.labelvalues:
                labels = ",".join(
                    f"{k}={v}" for k, v in
                    zip(family.labelnames, metric.labelvalues))
                key = f"{family.name}{{{labels}}}"
            out[key] = {f"p{int(q * 100)}": metric.quantile(q)
                        for q in quantiles}
            out[key]["count"] = float(metric.count)
            out[key]["mean"] = metric.mean
    return out


@dataclass
class RuntimeSample:
    """One point of the runtime series."""

    elapsed: float          #: seconds since the sampler started
    rss_bytes: int
    gc_collections: tuple   #: cumulative per-generation collection counts
    label_cache_bytes: int

    def to_dict(self) -> Dict[str, Any]:
        return {"elapsed": self.elapsed, "rss_bytes": self.rss_bytes,
                "gc_collections": list(self.gc_collections),
                "label_cache_bytes": self.label_cache_bytes}


class RuntimeSampler:
    """Periodic RSS/GC sampler with slope fitting and gauge export.

    Drive it manually (``sampler.sample()`` once per soak chunk -- the
    deterministic mode the benchmark uses) or as a daemon thread
    (``start(interval)`` / ``stop()``) behind a long-running server.
    Either way every sample updates the ``process_rss_bytes`` /
    ``process_gc_collections_total`` / ``label_cache_bytes`` instruments
    when observability is enabled.
    """

    def __init__(self, max_samples: int = 4096):
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.max_samples = max_samples
        self.samples: List[RuntimeSample] = []
        self._started = time.perf_counter()
        self._gc_base = self._gc_counts()
        self._last_gc = self._gc_base
        self._thread = None
        self._stop_flag = None

    @staticmethod
    def _gc_counts() -> tuple:
        return tuple(s["collections"] for s in gc.get_stats())

    def sample(self) -> RuntimeSample:
        """Take one sample, export gauges, and return it."""
        from repro.hashing.labels import label_cache_bytes
        now = time.perf_counter()
        gc_now = self._gc_counts()
        cache_bytes = label_cache_bytes()
        point = RuntimeSample(
            elapsed=now - self._started,
            rss_bytes=rss_bytes(),
            gc_collections=tuple(c - b for c, b
                                 in zip(gc_now, self._gc_base)),
            label_cache_bytes=cache_bytes)
        self.samples.append(point)
        if len(self.samples) > self.max_samples:
            # Decimate (keep every other sample) instead of sliding, so
            # the series still spans the whole run for slope fitting.
            self.samples = self.samples[::2]
        if OBS.enabled:
            OBS.process_rss_bytes.set(point.rss_bytes)
            OBS.label_cache_bytes.set(cache_bytes)
            for gen, (current, last) in enumerate(zip(gc_now, self._last_gc)):
                if current > last:
                    OBS.process_gc_collections.labels(str(gen)).inc(
                        current - last)
        self._last_gc = gc_now
        return point

    # -- background mode ----------------------------------------------------

    def start(self, interval: float = 1.0) -> None:
        """Start a daemon sampling thread; idempotent."""
        import threading
        if self._thread is not None and self._thread.is_alive():
            return
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._stop_flag = threading.Event()

        def _run(stop=self._stop_flag):
            while not stop.wait(interval):
                self.sample()

        self._thread = threading.Thread(
            target=_run, name="repro-runtime-sampler", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop the sampling thread and take one final sample; idempotent."""
        thread, self._thread = self._thread, None
        if self._stop_flag is not None:
            self._stop_flag.set()
            self._stop_flag = None
        if thread is not None and thread.is_alive():
            thread.join(timeout=5.0)
        if thread is not None:
            self.sample()

    # -- readout ------------------------------------------------------------

    def rss_series(self) -> tuple:
        return ([s.elapsed for s in self.samples],
                [s.rss_bytes for s in self.samples])

    def rss_slope_bytes_per_sec(self, skip: int = 0) -> float:
        """Fitted RSS slope, optionally skipping warm-up samples."""
        times, rss = self.rss_series()
        return rss_slope(times[skip:], rss[skip:])

    def summary(self, warmup_skip: int = 0) -> Dict[str, Any]:
        """JSON-able roll-up for benchmark records and ``tcm obs``."""
        times, rss = self.rss_series()
        gc_delta = self.samples[-1].gc_collections if self.samples else ()
        return {
            "samples": len(self.samples),
            "elapsed_seconds": times[-1] if times else 0.0,
            "rss_start_bytes": rss[0] if rss else 0,
            "rss_end_bytes": rss[-1] if rss else 0,
            "rss_peak_bytes": max(rss) if rss else 0,
            "rss_slope_bytes_per_sec":
                rss_slope(times[warmup_skip:], rss[warmup_skip:]),
            "gc_collections": list(gc_delta),
            "label_cache_bytes":
                self.samples[-1].label_cache_bytes if self.samples else 0,
        }
