"""Lightweight tracing: nested timed spans with a ring-buffer recorder.

A :class:`Tracer` keeps a bounded deque of *finished* spans (oldest
evicted first) and a per-thread stack of open ones, so

    with span("tcm.query.edge_weight", dataset="dblp"):
        ...

records one timed entry with its parent/depth filled in from whatever
span was open on the same thread.  When observability is disabled
(:func:`repro.obs.disable`), ``span()`` yields a shared no-op object and
records nothing.

Spans are for the *coarse* operations -- ingests, query batches,
shard merges -- not per-element work; per-element signals belong to the
counters in :mod:`repro.obs.instruments`.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.instruments import OBS


class Span:
    """One finished (or still-open) timed operation."""

    __slots__ = ("span_id", "parent_id", "name", "depth", "start", "end",
                 "attributes")

    def __init__(self, span_id: int, parent_id: Optional[int], name: str,
                 depth: int, start: float,
                 attributes: Optional[Dict[str, Any]] = None):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.depth = depth
        self.start = start
        self.end: Optional[float] = None
        self.attributes: Dict[str, Any] = attributes or {}

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def set(self, **attributes) -> "Span":
        """Attach attributes to the span; chainable."""
        self.attributes.update(attributes)
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "depth": self.depth,
            "start": self.start,
            "duration": self.duration,
            "attributes": self.attributes,
        }

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, depth={self.depth}, "
                f"duration={self.duration:.6f})")


class _NullSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def set(self, **attributes) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Tracer:
    """Ring-buffer span recorder; thread-safe for concurrent spans."""

    def __init__(self, capacity: int = 2048):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._finished: deque = deque(maxlen=capacity)
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._lock = threading.Lock()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **attributes) -> Iterator[object]:
        """Open a nested timed span; a no-op when obs is disabled.

        Spans opened while disabled are never recorded, even if obs is
        enabled before they close (the start time would be meaningless).
        """
        if not OBS.enabled:
            yield _NULL_SPAN
            return
        stack = self._stack()
        parent = stack[-1] if stack else None
        entry = Span(next(self._ids),
                     parent.span_id if parent else None,
                     name,
                     parent.depth + 1 if parent else 0,
                     time.perf_counter(),
                     attributes)
        stack.append(entry)
        try:
            yield entry
        finally:
            entry.end = time.perf_counter()
            stack.pop()
            with self._lock:
                self._finished.append(entry)

    def spans(self, name: Optional[str] = None) -> List[Span]:
        """Finished spans, oldest first; optionally filtered by name."""
        with self._lock:
            snapshot = list(self._finished)
        if name is not None:
            snapshot = [s for s in snapshot if s.name == name]
        return snapshot

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()

    def export(self) -> List[Dict[str, Any]]:
        """JSON-able list of finished spans, oldest first."""
        return [s.to_dict() for s in self.spans()]

    def export_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.export(), indent=indent, default=str)

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)


#: The default process-wide tracer used by the instrumented code paths.
TRACER = Tracer()


def span(name: str, **attributes):
    """Open a span on the default tracer (module-level convenience)."""
    return TRACER.span(name, **attributes)
