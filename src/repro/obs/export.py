"""Exporters: Prometheus text exposition, JSON snapshots, periodic reports.

Two pull formats and one push channel:

- :func:`render_prometheus` -- the text exposition format
  (``# HELP`` / ``# TYPE`` / samples).  Write it to a file for the
  node-exporter textfile collector, or serve it from any HTTP handler.
- :func:`json_snapshot` -- one JSON document bundling metrics, recent
  trace spans and (optionally) per-sketch health; what the ``tcm obs``
  CLI and the benchmark harness emit.
- :class:`PeriodicReporter` -- a stream consumer that prints a progress
  line (elements, edges/sec, bytes/sec) every N elements or T seconds
  during long-running ingest; attach it to a
  :class:`~repro.streams.replay.MonitoringHub` or wrap a raw stream.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, Iterable, Iterator, Optional

from repro.obs.health import TCMHealth, tcm_health
from repro.obs.instruments import OBS, REGISTRY
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import TRACER, Tracer


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Inside double-quoted label values, backslash, double-quote and
    line-feed must be written as ``\\\\``, ``\\"`` and ``\\n`` -- in that
    order, or already-escaped backslashes get double-escaped.
    """
    return (str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def _label_str(family, metric, extra: Dict[str, str] = {}) -> str:
    # Label *names* live on the family; children only carry their values.
    pairs = list(zip(family.labelnames, metric.labelvalues)) + \
        list(extra.items())
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


def render_prometheus(registry: MetricsRegistry = REGISTRY) -> str:
    """Render every registered metric in the Prometheus text format."""
    lines = []
    for family in registry.collect():
        lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.TYPE}")
        for metric in family.children():
            if isinstance(metric, Histogram):
                cumulative = metric.bucket_counts
                bounds = [*metric.buckets, float("inf")]
                for bound, count in zip(bounds, cumulative):
                    le = "+Inf" if bound == float("inf") else f"{bound:g}"
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_label_str(family, metric, {'le': le})} {count}")
                lines.append(f"{family.name}_sum"
                             f"{_label_str(family, metric)} "
                             f"{_format_value(metric.sum)}")
                lines.append(f"{family.name}_count"
                             f"{_label_str(family, metric)} "
                             f"{metric.count}")
            elif isinstance(metric, (Counter, Gauge)):
                lines.append(f"{family.name}{_label_str(family, metric)} "
                             f"{_format_value(metric.value)}")
    return "\n".join(lines) + "\n"


def metrics_snapshot(registry: MetricsRegistry = REGISTRY) -> Dict[str, Any]:
    """JSON-able dict of every metric's current value(s)."""
    out: Dict[str, Any] = {}
    for family in registry.collect():
        samples = []
        for metric in family.children():
            labels = dict(zip(metric.labelnames or family.labelnames,
                              metric.labelvalues))
            if isinstance(metric, Histogram):
                samples.append({
                    "labels": labels,
                    "count": metric.count,
                    "sum": metric.sum,
                    "mean": metric.mean,
                    "p50": metric.quantile(0.5),
                    "p99": metric.quantile(0.99),
                    "buckets": dict(zip((f"{b:g}" for b in metric.buckets),
                                        metric.bucket_counts)),
                })
            else:
                samples.append({"labels": labels, "value": metric.value})
        out[family.name] = {"type": family.TYPE, "help": family.help,
                            "samples": samples}
    return out


def publish_health(tcm, registry: MetricsRegistry = REGISTRY,
                   name: str = "default") -> TCMHealth:
    """Compute a TCM's health and mirror it into gauges.

    Gauges are labeled ``{tcm, sketch}`` so several summaries (shards,
    windows) can publish side by side.  Returns the full report.
    """
    health = tcm_health(tcm)
    load = registry.gauge("tcm_sketch_load_factor",
                          "Occupied / total cells per sketch",
                          labelnames=("tcm", "sketch"))
    occupied = registry.gauge("tcm_sketch_occupied_cells",
                              "Occupied cells per sketch",
                              labelnames=("tcm", "sketch"))
    collisions = registry.gauge("tcm_sketch_collision_rate",
                                "Exact (extended) or estimated fraction of "
                                "labels sharing buckets",
                                labelnames=("tcm", "sketch"))
    nbytes = registry.gauge("tcm_memory_bytes",
                            "Total memory footprint per summary",
                            labelnames=("tcm",))
    for i, sketch in enumerate(health.sketches):
        load.labels(name, i).set(sketch.load_factor)
        occupied.labels(name, i).set(sketch.occupied_cells)
        if sketch.collision_rate is not None:
            collisions.labels(name, i).set(sketch.collision_rate)
    nbytes.labels(name).set(health.nbytes)
    engine_bytes = getattr(tcm, "query_engine_cache_bytes", None)
    if callable(engine_bytes):
        # The lazily built index caches counted inside memory_bytes(),
        # broken out so dashboards can see sketch vs cache growth.
        registry.gauge(
            "query_engine_cache_bytes",
            "Bytes held by a TCM's lazily built query-engine index caches "
            "(connectivity, closure bitsets, flow vectors, distances)",
            labelnames=("tcm",)).labels(name).set(engine_bytes())
    return health


def json_snapshot(registry: MetricsRegistry = REGISTRY,
                  tracer: Optional[Tracer] = TRACER,
                  tcms: Optional[Dict[str, Any]] = None,
                  indent: Optional[int] = None) -> str:
    """One JSON document: metrics + recent spans + optional health.

    :param tcms: ``{name: TCM}`` summaries to health-check inline.
    """
    doc: Dict[str, Any] = {
        "enabled": OBS.enabled,
        "metrics": metrics_snapshot(registry),
    }
    if tracer is not None:
        doc["spans"] = tracer.export()
    if tcms:
        doc["health"] = {label: tcm_health(t).to_dict()
                         for label, t in tcms.items()}
    return json.dumps(doc, indent=indent, default=str)


class PeriodicReporter:
    """Progress lines for long-running ingest: elements, edges/s, bytes/s.

    Use as a hub consumer or as a stream wrapper::

        hub.attach("reporter", PeriodicReporter(every=100_000))
        # or
        tcm.ingest(reporter.wrap(stream))

    Emits through ``emit`` (default: ``print``) every ``every`` elements
    *or* ``interval`` seconds, whichever comes first; call
    :meth:`report` for a final summary line.

    For workloads that stall (a quiet stream emits nothing through
    :meth:`observe`), :meth:`start` runs a daemon thread that emits a
    progress line every ``interval`` seconds regardless of traffic;
    :meth:`stop` joins the thread and flushes the final :meth:`report`
    line.  Both are idempotent, and a reporter can be restarted after a
    stop.
    """

    def __init__(self, every: int = 100_000,
                 interval: Optional[float] = 10.0,
                 emit: Callable[[str], None] = print):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.every = every
        self.interval = interval
        self.emit = emit
        self.elements = 0
        self.bytes = 0
        self._started: Optional[float] = None
        self._last_emit_time: Optional[float] = None
        self._last_elements = 0
        self._last_bytes = 0
        self._thread = None
        self._stop_flag = None

    @staticmethod
    def edge_nbytes(edge) -> int:
        """Estimated wire size: label text + 8B weight + 8B timestamp."""
        return len(str(edge.source)) + len(str(edge.target)) + 16

    def observe(self, edge) -> None:
        """Account one element (hub-consumer entry point)."""
        now = time.perf_counter()
        if self._started is None:
            self._started = self._last_emit_time = now
        self.elements += 1
        self.bytes += self.edge_nbytes(edge)
        due = (self.elements % self.every == 0
               or (self.interval is not None
                   and now - self._last_emit_time >= self.interval))
        if due:
            self._emit_line(now)

    def _emit_line(self, now: float) -> None:
        window = max(now - self._last_emit_time, 1e-9)
        d_elements = self.elements - self._last_elements
        d_bytes = self.bytes - self._last_bytes
        self.emit(f"[obs] {self.elements} elements "
                  f"({d_elements / window:,.0f} edges/s, "
                  f"{d_bytes / window:,.0f} bytes/s)")
        self._last_emit_time = now
        self._last_elements = self.elements
        self._last_bytes = self.bytes

    def wrap(self, stream: Iterable) -> Iterator:
        """Yield the stream unchanged while accounting every element."""
        for edge in stream:
            self.observe(edge)
            yield edge

    # -- lifecycle (background heartbeat) -----------------------------------

    @property
    def running(self) -> bool:
        """True while the heartbeat thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Start the heartbeat thread; a no-op when already running."""
        import threading
        if self.running:
            return
        if self.interval is None or self.interval <= 0:
            raise ValueError(
                "start() needs a positive interval to pace the heartbeat")
        if self._started is None:
            self._started = self._last_emit_time = time.perf_counter()
        self._stop_flag = threading.Event()

        def _run(stop=self._stop_flag):
            while not stop.wait(self.interval):
                self._emit_line(time.perf_counter())

        self._thread = threading.Thread(
            target=_run, name="repro-periodic-reporter", daemon=True)
        self._thread.start()

    def stop(self) -> Optional[Dict[str, float]]:
        """Join the heartbeat and flush the final report; idempotent.

        Returns the :meth:`report` summary on the stop that actually
        tears the thread down, ``None`` on repeat calls.
        """
        thread, self._thread = self._thread, None
        if self._stop_flag is not None:
            self._stop_flag.set()
            self._stop_flag = None
        if thread is None:
            return None
        thread.join(timeout=5.0)
        return self.report()

    def report(self) -> Dict[str, float]:
        """Emit and return the whole-run summary."""
        elapsed = ((time.perf_counter() - self._started)
                   if self._started is not None else 0.0)
        rate = self.elements / elapsed if elapsed > 0 else 0.0
        byte_rate = self.bytes / elapsed if elapsed > 0 else 0.0
        self.emit(f"[obs] done: {self.elements} elements in {elapsed:.2f}s "
                  f"({rate:,.0f} edges/s, {byte_rate:,.0f} bytes/s)")
        return {"elements": self.elements, "bytes": self.bytes,
                "seconds": elapsed, "edges_per_sec": rate,
                "bytes_per_sec": byte_rate}
