"""The well-known instrument handles shared by every instrumented module.

``OBS`` is the single process-wide switchboard: instrumented code guards
every metric touch with ``if OBS.enabled:`` -- one attribute lookup and a
branch when observability is off, which is what keeps the hot update loop
honest (see ``BENCH_obs_overhead.json`` for the measured cost).

The handles are created eagerly against the default registry so metric
names exist (at zero) from the first export, and so hot loops can cache
a bound child (e.g. ``OBS.hh_observed.labels("edge")``) once instead of
doing a dict lookup per element.

Metric catalog: docs/OBSERVABILITY.md.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry, log_buckets

#: The default process-wide registry every instrument lives in.
REGISTRY = MetricsRegistry()


class Instruments:
    """Pre-declared metric handles plus the global enable flag."""

    def __init__(self, registry: MetricsRegistry):
        self.enabled = False
        self.registry = registry

        # -- ingest path ---------------------------------------------------
        self.tcm_updates = registry.counter(
            "tcm_updates_total",
            "Stream elements absorbed via TCM.update (any aggregation)")
        self.tcm_update_weight = registry.counter(
            "tcm_update_weight_total",
            "Total weight absorbed via TCM.update")
        self.tcm_removes = registry.counter(
            "tcm_removes_total", "Deletions applied via TCM.remove")
        self.tcm_ingest_elements = registry.counter(
            "tcm_ingest_elements_total",
            "Elements absorbed through bulk TCM.ingest / "
            "ingest_conservative")
        self.tcm_ingest_seconds = registry.histogram(
            "tcm_ingest_seconds",
            "Wall time of bulk ingest calls",
            buckets=log_buckets(1e-5, 100.0))
        self.tcm_ingest_chunks = registry.counter(
            "tcm_ingest_chunks_total",
            "Fixed-size chunks processed by the batched ingest engine")

        # -- query path ----------------------------------------------------
        self.query_seconds = registry.histogram(
            "tcm_query_seconds",
            "Latency per query, labeled by query family",
            labelnames=("kind",))
        self.subgraph_queries_built = registry.counter(
            "tcm_subgraph_queries_built_total",
            "SubgraphQuery objects constructed (parsed or programmatic)")

        # -- query engine (epoch-cached indexes) ---------------------------
        self.query_cache_hits = registry.counter(
            "query_engine_cache_hits_total",
            "Epoch-cache hits in the query engine, labeled by index kind",
            labelnames=("index",))
        self.query_cache_misses = registry.counter(
            "query_engine_cache_misses_total",
            "Epoch-cache misses (index rebuilds), labeled by index kind",
            labelnames=("index",))
        self.query_cache_invalidations = registry.counter(
            "query_engine_cache_invalidations_total",
            "Per-sketch cache states discarded because the sketch epoch "
            "moved past the cached one")
        self.query_index_build_seconds = registry.histogram(
            "query_engine_index_build_seconds",
            "Wall time to (re)build one cached index, labeled by kind",
            labelnames=("index",),
            buckets=log_buckets(1e-6, 100.0))

        # -- sliding / rotating windows ------------------------------------
        self.window_observed = registry.counter(
            "window_observed_total",
            "Stream elements absorbed by sliding/rotating windows")
        self.window_expired = registry.counter(
            "window_expired_total",
            "Elements expired (deleted) out of sliding windows")
        self.window_live_elements = registry.gauge(
            "window_live_elements",
            "Live (non-expired) elements in the most recently advanced "
            "sliding window")
        self.window_watermark_lag = registry.gauge(
            "window_watermark_lag",
            "Stream-time span the live buffer covers: watermark minus "
            "oldest live timestamp (0 when empty)")
        self.window_expired_per_advance = registry.histogram(
            "window_expired_per_advance",
            "Elements expired per watermark advance (batch deletion size)",
            buckets=log_buckets(1.0, 1e6))
        self.window_rotations = registry.counter(
            "window_rotations_total",
            "Sub-sketch rotations (oldest-bucket clears) in rotating "
            "windows")
        self.window_late_clamped = registry.counter(
            "window_late_clamped_total",
            "Late elements whose timestamps were clamped up to the "
            "watermark by RotatingWindowTCM.observe_columns")

        # -- streaming monitors (Algorithms 1 & 2) -------------------------
        self.hh_observed = registry.counter(
            "hh_observed_total",
            "Elements observed by heavy-hitter monitors",
            labelnames=("monitor",))
        self.hh_evictions = registry.counter(
            "hh_evictions_total",
            "Candidate evictions across heavy-hitter monitors")
        self.triangle_query_seconds = registry.histogram(
            "tcm_triangle_query_seconds",
            "Latency of heavy-triangle-connection queries (Algorithm 2)",
            labelnames=("stage",))

        # -- stream replay -------------------------------------------------
        self.replay_edges = registry.counter(
            "stream_replay_edges_total",
            "Elements delivered through MonitoringHub.observe")
        self.replay_bytes = registry.counter(
            "stream_replay_bytes_total",
            "Estimated wire bytes of elements delivered through "
            "MonitoringHub (label lengths + 16B weight/timestamp)")

        # -- accuracy telemetry (repro.obs.accuracy) -----------------------
        self.accuracy_observed_are = registry.gauge(
            "accuracy_observed_are",
            "Mean absolute relative error of the summary over the "
            "shadow-truth sampled keys, per tracked summary",
            labelnames=("summary",))
        self.accuracy_observed_max_are = registry.gauge(
            "accuracy_observed_max_are",
            "Max absolute relative error over the sampled keys",
            labelnames=("summary",))
        self.accuracy_observed_epsilon = registry.gauge(
            "accuracy_observed_epsilon",
            "Max (estimate - exact) / total stream weight over the "
            "sampled keys: the empirical epsilon in err <= eps * W",
            labelnames=("summary",))
        self.accuracy_false_positive_rate = registry.gauge(
            "accuracy_false_positive_rate",
            "Fraction of never-inserted probe edges the summary answers "
            "with a positive weight",
            labelnames=("summary",))
        self.accuracy_sampled_keys = registry.gauge(
            "accuracy_sampled_keys",
            "Edge keys currently tracked by the shadow-truth comparator",
            labelnames=("summary",))
        self.accuracy_summary_load_factor = registry.gauge(
            "accuracy_summary_load_factor",
            "Occupied / total cells of the tracked summary at the last "
            "accuracy tick (the drift detector's occupancy signal)",
            labelnames=("summary",))
        self.accuracy_ticks = registry.counter(
            "accuracy_ticks_total",
            "Accuracy-tracker ticks (summary probes) performed")
        self.drift_events = registry.counter(
            "drift_events_total",
            "Drift alarms emitted, labeled by detector signal",
            labelnames=("signal",))
        self.drift_statistic = registry.gauge(
            "drift_statistic",
            "Current Page-Hinkley excursion per detector signal",
            labelnames=("signal",))

        # -- runtime telemetry (repro.obs.runtime) -------------------------
        self.process_rss_bytes = registry.gauge(
            "process_rss_bytes",
            "Resident set size of this process at the last runtime sample")
        self.process_gc_collections = registry.counter(
            "process_gc_collections_total",
            "Garbage collections observed since sampling started, "
            "labeled by generation",
            labelnames=("generation",))
        self.query_engine_cache_bytes = registry.gauge(
            "query_engine_cache_bytes",
            "Bytes held by a TCM's lazily built query-engine index caches "
            "(connectivity, closure bitsets, flow vectors, distances)",
            labelnames=("tcm",))
        self.label_cache_bytes = registry.gauge(
            "label_cache_bytes",
            "Estimated bytes held by the process-wide label-intern cache")

        # -- flight recorder (repro.obs.flight) ----------------------------
        self.flight_events = registry.counter(
            "flight_events_total",
            "Events captured by the flight recorder, labeled by kind",
            labelnames=("kind",))

        # -- distributed ---------------------------------------------------
        self.shard_elements = registry.counter(
            "sharded_elements_total",
            "Elements summarized per shard worker",
            labelnames=("shard",))
        self.shard_build_seconds = registry.histogram(
            "sharded_build_seconds",
            "Wall time to summarize one shard",
            buckets=log_buckets(1e-5, 100.0))
        self.shard_merge_seconds = registry.histogram(
            "sharded_merge_seconds",
            "Wall time per pairwise shard-summary merge",
            buckets=log_buckets(1e-6, 10.0))
        self.shard_count = registry.gauge(
            "sharded_shards", "Shards in the most recent summarize() call")
        self.parallel_workers = registry.gauge(
            "parallel_build_workers",
            "Worker processes in the most recent parallel build")
        self.parallel_worker_seconds = registry.histogram(
            "parallel_worker_build_seconds",
            "Per-worker wall time spent building a shard summary",
            buckets=log_buckets(1e-4, 1000.0))
        self.parallel_worker_chunks = registry.counter(
            "parallel_worker_chunks_total",
            "Chunks ingested per parallel worker",
            labelnames=("worker",))
        self.parallel_merge_seconds = registry.histogram(
            "parallel_merge_seconds",
            "Wall time per worker-summary merge in a parallel build",
            buckets=log_buckets(1e-6, 10.0))
        self.parallel_shm_bytes = registry.gauge(
            "parallel_shared_memory_bytes",
            "Shared-memory bytes mapped by the active parallel build "
            "(input slot ring + per-worker output tables; 0 when idle)")
        self.kernel_backend = registry.gauge(
            "kernel_backend_active",
            "1 for the scatter-kernel backend bulk ingest dispatches to, "
            "0 for the others (see repro.core.kernels)",
            labelnames=("backend",))

        # -- sketch service (repro.server) ---------------------------------
        self.server_requests = registry.counter(
            "server_requests_total",
            "HTTP requests served, labeled by endpoint and status code",
            labelnames=("endpoint", "status"))
        self.server_request_seconds = registry.histogram(
            "server_request_seconds",
            "End-to-end request latency (parse to response write), "
            "labeled by endpoint",
            labelnames=("endpoint",),
            buckets=log_buckets(1e-5, 10.0))
        self.server_batch_flushes = registry.counter(
            "server_batch_flushes_total",
            "Coalescer flushes, labeled by batch kind (ingest/query) and "
            "trigger reason (size/deadline/barrier/shutdown)",
            labelnames=("kind", "reason"))
        self.server_batch_elements = registry.histogram(
            "server_batch_elements",
            "Elements (or queries) per coalesced batch flush",
            labelnames=("kind",),
            buckets=log_buckets(1.0, 1e6))
        self.server_batch_wait_seconds = registry.histogram(
            "server_batch_wait_seconds",
            "Time the first request of a batch waited before its flush",
            buckets=log_buckets(1e-6, 1.0))
        self.server_coalesced_requests = registry.counter(
            "server_coalesced_requests_total",
            "Requests answered from a shared coalesced batch, labeled by "
            "batch kind",
            labelnames=("kind",))
        self.server_active_sketches = registry.gauge(
            "server_active_sketches",
            "Named sketches currently registered in the service")
        self.server_open_connections = registry.gauge(
            "server_open_connections",
            "Client connections currently open against the service")

        # -- binary wire protocol (repro.server.wire) ----------------------
        self.server_wire_requests = registry.counter(
            "server_wire_requests_total",
            "Binary columnar requests decoded, labeled by wire op",
            labelnames=("op",))
        self.server_wire_bytes = registry.counter(
            "server_wire_bytes_total",
            "Request-body bytes received as binary columnar frames")

        # -- multi-process sharding (repro.server.sharding) ----------------
        self.server_misdirected_requests = registry.counter(
            "server_misdirected_requests_total",
            "Tenant requests answered 421 because another worker owns "
            "the tenant (shard-oblivious client)")
        self.server_worker_index = registry.gauge(
            "server_worker_index",
            "This process's worker index in a sharded deployment")
        self.server_cluster_workers = registry.gauge(
            "server_cluster_workers",
            "Worker processes in the sharded deployment (0 = unsharded)")

        # -- durability (repro.server.durability) --------------------------
        self.wal_records = registry.counter(
            "wal_records_total",
            "Records appended to tenant write-ahead logs, labeled by op",
            labelnames=("op",))
        self.wal_bytes = registry.counter(
            "wal_bytes_total",
            "Frame bytes appended to tenant write-ahead logs")
        self.wal_fsyncs = registry.counter(
            "wal_fsyncs_total", "fsync calls issued by WAL writers")
        self.wal_fsync_seconds = registry.histogram(
            "wal_fsync_seconds", "Wall time per WAL fsync",
            buckets=log_buckets(1e-6, 10.0))
        self.wal_rotations = registry.counter(
            "wal_rotations_total",
            "WAL segment rotations (size-triggered or snapshot-triggered)")
        self.wal_append_errors = registry.counter(
            "wal_append_errors_total",
            "WAL appends that failed (write or fsync error) and were "
            "rolled back")
        self.wal_snapshots = registry.counter(
            "wal_snapshots_total", "Tenant snapshots written")
        self.wal_snapshot_seconds = registry.histogram(
            "wal_snapshot_seconds",
            "Wall time per tenant snapshot (rotate + write + prune)",
            buckets=log_buckets(1e-4, 100.0))
        self.wal_segments_pruned = registry.counter(
            "wal_segments_pruned_total",
            "WAL segments deleted because a snapshot covers them")
        self.wal_group_commits = registry.counter(
            "wal_group_commits_total",
            "Group-commit barriers executed by the WAL pipeline")
        self.wal_group_commit_records = registry.histogram(
            "wal_group_commit_records",
            "Records committed per group-commit barrier (across all "
            "tenants staged since the previous barrier)",
            buckets=log_buckets(1.0, 1e5))
        self.wal_group_commit_seconds = registry.histogram(
            "wal_group_commit_seconds",
            "Wall time per group-commit barrier (write + fsync, off the "
            "event loop)",
            buckets=log_buckets(1e-6, 10.0))
        self.wal_tmp_files_pruned = registry.counter(
            "wal_tmp_files_pruned_total",
            "Orphan temp files (died mid-snapshot/meta write) pruned "
            "from tenant dirs at attach/recovery time")
        self.recovery_replayed_records = registry.counter(
            "recovery_replayed_records_total",
            "WAL records replayed during startup recovery")
        self.recovery_replayed_elements = registry.counter(
            "recovery_replayed_elements_total",
            "Stream elements replayed during startup recovery")
        self.recovery_torn_frames = registry.counter(
            "recovery_torn_frames_total",
            "Torn/corrupt WAL tail frames discarded during recovery")
        self.recovery_tenants = registry.counter(
            "recovery_tenants_total",
            "Tenants rebuilt from disk during startup recovery")
        self.recovery_seconds = registry.histogram(
            "recovery_seconds",
            "Wall time of a full startup recovery (all tenants)",
            buckets=log_buckets(1e-4, 1000.0))

        # -- graceful degradation (admission control) ----------------------
        self.shed_requests = registry.counter(
            "shed_requests_total",
            "Requests refused (429/503) to protect the service, labeled "
            "by reason (lag/backlog/query_class/connections)",
            labelnames=("reason",))
        self.server_loop_lag = registry.gauge(
            "server_loop_lag_seconds",
            "EWMA of event-loop callback delay -- the overload signal "
            "the admission controller sheds on")
        self.retry_attempts = registry.counter(
            "retry_attempts_total",
            "Client-side (loadgen) retries, labeled by cause "
            "(http_429/timeout/connection)",
            labelnames=("reason",))
        self.retry_backoff_seconds = registry.counter(
            "retry_backoff_seconds_total",
            "Total client-side (loadgen) backoff sleep time")


OBS = Instruments(REGISTRY)


def enable() -> None:
    """Turn instrumentation on (counters start moving)."""
    OBS.enabled = True


def disable() -> None:
    """Turn instrumentation off (hot paths fall back to the no-op check)."""
    OBS.enabled = False


def is_enabled() -> bool:
    return OBS.enabled
