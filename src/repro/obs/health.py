"""Sketch-health introspection: how full, how collided, how big.

TCM's accuracy degrades exactly as buckets saturate -- the signal
gSketch exploits with workload-aware partitioning and SBG-Sketch with
self-balancing.  This module computes that saturation from a live
summary without touching its estimates:

- **load factor** -- occupied cells / total cells.  The paper's "compressed
  sketches are relatively dense" claim is a load-factor claim; a sketch
  near 1.0 answers every query through collisions.
- **row-occupancy distribution** -- max/mean/percentiles of occupied cells
  per row.  Skewed streams concentrate mass in few rows long before the
  whole matrix fills.
- **collision estimates** -- for extended sketches (``keep_labels=True``)
  the *exact* number of labels sharing each bucket; for plain sketches a
  birthday-bound estimate from the occupancy.
- **memory footprint** -- the ``memory_bytes()`` accessor of each sketch.

Everything here is read-only and works on dense :class:`GraphSketch`,
:class:`SparseGraphSketch`, whole :class:`TCM` ensembles and the
distributed deployments (per-worker / per-shard).
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Any, Dict, List, Optional

import numpy as np


@dataclass
class SketchHealth:
    """Health numbers for one sketch (one hashed adjacency matrix)."""

    rows: int
    cols: int
    cells: int
    occupied_cells: int
    load_factor: float
    total_mass: float
    nbytes: int
    graphical: bool
    extended: bool
    #: occupied cells per row: [min, mean, p50, p90, max]
    row_occupancy: List[float] = field(default_factory=list)
    #: share of total mass held by the heaviest 1% of occupied cells
    top_cell_mass_share: float = 0.0
    #: distinct labels materialized (extended sketches only)
    labels_tracked: Optional[int] = None
    #: buckets holding >= 2 labels (extended sketches only)
    colliding_buckets: Optional[int] = None
    #: fraction of labels sharing a bucket with another label.  Exact for
    #: extended sketches; a birthday-style estimate otherwise (None when
    #: no estimate is possible).
    collision_rate: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass
class TCMHealth:
    """Ensemble-level health: per-sketch reports plus totals."""

    d: int
    directed: bool
    aggregation: str
    cells: int
    occupied_cells: int
    load_factor: float
    nbytes: int
    sketches: List[SketchHealth] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


def _occupancy_stats(per_row: np.ndarray) -> List[float]:
    if per_row.size == 0:
        return [0.0, 0.0, 0.0, 0.0, 0.0]
    return [float(per_row.min()),
            float(per_row.mean()),
            float(np.percentile(per_row, 50)),
            float(np.percentile(per_row, 90)),
            float(per_row.max())]


def _top_mass_share(values: np.ndarray) -> float:
    """Mass share of the heaviest 1% (at least one) of occupied cells."""
    if values.size == 0:
        return 0.0
    total = float(np.abs(values).sum())
    if total == 0.0:
        return 0.0
    k = max(1, values.size // 100)
    top = np.partition(np.abs(values), values.size - k)[-k:]
    return float(top.sum()) / total


def _estimate_collision_rate(labels: int, buckets: int) -> float:
    """Expected fraction of labels sharing a bucket under uniform hashing.

    With ``n`` labels over ``w`` buckets, a given label collides with
    probability ``1 - (1 - 1/w)^(n-1)``; by linearity that is also the
    expected colliding fraction.
    """
    if labels <= 1 or buckets <= 0:
        return 0.0
    if buckets == 1:
        return 1.0
    return 1.0 - (1.0 - 1.0 / buckets) ** (labels - 1)


def sketch_health(sketch) -> SketchHealth:
    """Compute the health report for one (dense or sparse) sketch."""
    sparse = hasattr(sketch, "occupied_cells")  # SparseGraphSketch
    if sparse:
        cells_map = sketch._cells
        occupied = len(cells_map)
        values = np.array(list(cells_map.values()), dtype=float)
        total_mass = float(values.sum()) if occupied else 0.0
        per_row = np.zeros(sketch.rows, dtype=np.int64)
        for (r, _c), v in cells_map.items():
            if v != 0:
                per_row[r] += 1
    else:
        matrix = np.asarray(sketch.matrix)
        nonzero = matrix != 0
        occupied = int(np.count_nonzero(nonzero))
        values = matrix[nonzero]
        total_mass = float(matrix.sum())
        per_row = nonzero.sum(axis=1)

    cells = sketch.rows * sketch.cols
    labels_tracked = colliding = None
    collision_rate: Optional[float] = None
    if sketch.keeps_labels:
        bucket_sizes = [len(v) for v in sketch._row_labels.values()]
        labels_tracked = sum(bucket_sizes)
        colliding = sum(1 for size in bucket_sizes if size >= 2)
        shared = sum(size for size in bucket_sizes if size >= 2)
        collision_rate = (shared / labels_tracked) if labels_tracked else 0.0
    elif occupied:
        # No labels -> estimate from occupancy: occupied cells lower-bound
        # the distinct edges seen, so this underestimates on purpose.
        collision_rate = _estimate_collision_rate(occupied, cells)

    return SketchHealth(
        rows=sketch.rows,
        cols=sketch.cols,
        cells=cells,
        occupied_cells=occupied,
        load_factor=occupied / cells if cells else 0.0,
        total_mass=total_mass,
        nbytes=int(sketch.memory_bytes()),
        graphical=sketch.is_graphical,
        extended=sketch.keeps_labels,
        row_occupancy=_occupancy_stats(np.asarray(per_row)),
        top_cell_mass_share=_top_mass_share(np.asarray(values)),
        labels_tracked=labels_tracked,
        colliding_buckets=colliding,
        collision_rate=collision_rate,
    )


def tcm_health(tcm) -> TCMHealth:
    """Health report for a whole TCM ensemble."""
    reports = [sketch_health(s) for s in tcm.sketches]
    cells = sum(r.cells for r in reports)
    occupied = sum(r.occupied_cells for r in reports)
    return TCMHealth(
        d=tcm.d,
        directed=tcm.directed,
        aggregation=tcm.aggregation.value,
        cells=cells,
        occupied_cells=occupied,
        load_factor=occupied / cells if cells else 0.0,
        nbytes=int(tcm.memory_bytes()),
        sketches=reports,
    )


def distributed_health(deployment) -> Dict[str, Any]:
    """Per-worker health for a :class:`DistributedTCM` (broadcast mode).

    Returns ``{"workers": [TCMHealth-dict per worker], "nbytes": total}``.
    """
    reports = [tcm_health(w.tcm) for w in deployment.workers]
    return {
        "workers": [r.to_dict() for r in reports],
        "nbytes": sum(r.nbytes for r in reports),
    }


def saturation_warnings(health: TCMHealth,
                        load_threshold: float = 0.5,
                        collision_threshold: float = 0.5) -> List[str]:
    """Human-readable warnings for sketches past the accuracy cliff.

    The thresholds are heuristics: at load factor 0.5 roughly every other
    query cell carries foreign mass, and the paper's error bounds
    (Theorem 1, e/w collision mass) presume much sparser rows.
    """
    warnings = []
    for i, s in enumerate(health.sketches):
        if s.load_factor > load_threshold:
            warnings.append(
                f"sketch[{i}] load factor {s.load_factor:.2f} exceeds "
                f"{load_threshold:.2f}: estimates are collision-dominated; "
                "grow width or add sketches")
        if (s.collision_rate is not None
                and s.collision_rate > collision_threshold):
            warnings.append(
                f"sketch[{i}] collision rate {s.collision_rate:.2f} exceeds "
                f"{collision_threshold:.2f}: most labels share buckets")
    return warnings
