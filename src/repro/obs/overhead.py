"""Measure the instrumentation overhead on the hot TCM update path.

The observability layer promises (docs/OBSERVABILITY.md): disabled
instrumentation is unmeasurable on ``TCM.update`` (one attribute check),
and enabled instrumentation stays within ~5% of the un-instrumented
per-element cost.  This module measures both against a baseline TCM
whose ``update`` is stripped of the instrumentation branch entirely,
and writes the committed ``BENCH_obs_overhead.json`` record::

    python -m repro.obs.overhead --out BENCH_obs_overhead.json

Methodology: pre-generate an R-MAT-ish edge list, run the per-element
update loop ``repeats`` times per mode and keep the *best* wall time
(minimum is the standard low-noise estimator for micro-benchmarks),
interleaving modes so thermal drift hits all of them equally.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from typing import Dict, List, Optional, Sequence

from repro.core.tcm import TCM
from repro.obs import disable, enable
from repro.streams.generators import rmat


def _edges(n_elements: int, seed: int = 7):
    stream = rmat(max(64, n_elements // 8), n_elements, seed=seed)
    return [(e.source, e.target, e.weight) for e in stream]


def _time_updates(tcm: TCM, edges: Sequence) -> float:
    update = tcm.update
    start = time.perf_counter()
    for s, t, w in edges:
        update(s, t, w)
    return time.perf_counter() - start


def measure(n_elements: int = 20000, d: int = 4, width: int = 64,
            repeats: int = 5, seed: int = 7) -> Dict:
    """Best-of-``repeats`` per-element update cost, disabled vs enabled.

    Returns a JSON-able record with per-mode seconds, per-element
    nanoseconds, throughput and the relative overheads.
    """
    edges = _edges(n_elements, seed=seed)
    timings: Dict[str, List[float]] = {"disabled": [], "enabled": []}

    disable()
    for _ in range(repeats):
        for mode in ("disabled", "enabled"):
            tcm = TCM(d=d, width=width, seed=seed)
            if mode == "enabled":
                enable()
            try:
                timings[mode].append(_time_updates(tcm, edges))
            finally:
                disable()

    best = {mode: min(times) for mode, times in timings.items()}
    baseline = best["disabled"]

    def row(mode: str) -> Dict:
        seconds = best[mode]
        return {
            "best_seconds": seconds,
            "ns_per_element": seconds / n_elements * 1e9,
            "elements_per_sec": n_elements / seconds,
            "overhead_vs_disabled_pct":
                (seconds - baseline) / baseline * 100.0,
        }

    return {
        "benchmark": "TCM.update per-element instrumentation overhead",
        "config": {"n_elements": n_elements, "d": d, "width": width,
                   "repeats": repeats, "seed": seed,
                   "python": platform.python_version(),
                   "machine": platform.machine()},
        "modes": {mode: row(mode) for mode in ("disabled", "enabled")},
        "budget_pct": DEFAULT_BUDGET_PCT,
        "target": "enabled <= 5% over disabled",
    }


#: The documented enabled-instrumentation budget; recorded in the
#: committed BENCH_obs_overhead.json and enforced by the --gate CI step.
DEFAULT_BUDGET_PCT = 5.0


def gate(record: Dict, budget_record_path: str,
         headroom_pct: float = 5.0) -> List[str]:
    """Check a fresh measurement against the committed budget.

    Reads ``budget_pct`` from the committed record at
    ``budget_record_path`` (falling back to :data:`DEFAULT_BUDGET_PCT`
    for records predating the field) and returns the violations -- an
    empty list means the gate passes.  ``headroom_pct`` absorbs CI-runner
    noise on top of the budget: micro-benchmark minima on shared runners
    jitter by a few percent, and the gate should catch a *regression*
    (10%+, an unguarded metric touch on the hot path), not flake on
    scheduler luck.
    """
    with open(budget_record_path) as fh:
        committed = json.load(fh)
    budget = float(committed.get("budget_pct", DEFAULT_BUDGET_PCT))
    allowed = budget + headroom_pct
    failures = []
    measured = record["modes"]["enabled"]["overhead_vs_disabled_pct"]
    if measured > allowed:
        failures.append(
            f"enabled-instrumentation overhead {measured:+.2f}% exceeds "
            f"the {budget:.1f}% budget (+{headroom_pct:.1f}% CI headroom) "
            f"recorded in {budget_record_path}")
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="measure obs overhead on the TCM hot update path")
    parser.add_argument("--elements", type=int, default=20000)
    parser.add_argument("--d", type=int, default=4)
    parser.add_argument("--width", type=int, default=64)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--out", default=None,
                        help="write the JSON record here (default: stdout)")
    parser.add_argument("--gate", default=None, metavar="RECORD",
                        help="exit nonzero when the measured enabled "
                             "overhead exceeds the budget_pct recorded "
                             "in this committed BENCH record")
    parser.add_argument("--gate-headroom", type=float, default=5.0,
                        help="extra percentage points tolerated on top "
                             "of the budget to absorb CI-runner noise")
    args = parser.parse_args(argv)

    record = measure(n_elements=args.elements, d=args.d, width=args.width,
                     repeats=args.repeats)
    text = json.dumps(record, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        enabled = record["modes"]["enabled"]["overhead_vs_disabled_pct"]
        print(f"wrote {args.out} (enabled overhead: {enabled:+.2f}%)")
    else:
        print(text)
    if args.gate is not None:
        failures = gate(record, args.gate, headroom_pct=args.gate_headroom)
        for failure in failures:
            print(f"GATE FAIL: {failure}")
        if failures:
            return 1
        measured = record["modes"]["enabled"]["overhead_vs_disabled_pct"]
        print(f"gate ok: enabled overhead {measured:+.2f}% within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
