"""Continuous accuracy telemetry: shadow truth, observed error, drift.

The paper's central claim is *bounded-error* summarization -- ``err <=
epsilon * W`` with probability ``1 - delta`` -- yet a deployed sketch
only ever shows its estimates, never its error.  gSketch (arXiv:1111.7167)
and SBG-Sketch (arXiv:1709.06723) both demonstrate the failure mode this
module exists to surface: workload skew and concept drift silently
degrade sketch accuracy long before any performance counter moves.

Three pieces:

- :class:`ShadowTruthComparator` -- keeps the **exact** aggregated weight
  for a uniform sample of edge keys next to the sketch, so the observed
  error of the live summary can be measured continuously.  The sample is
  a *bottom-k reservoir in hash space* (Cohen & Kaplan's bottom-k
  machinery, the same admission rule as
  :class:`repro.baselines.bottomk.BottomKSketch` and the key-space
  counterpart of :class:`repro.baselines.sampling.ReservoirEdgeSample`'s
  Algorithm R): track the ``k`` edge keys with the smallest values of a
  fixed 64-bit mix of the key pair.  Membership is a pure function of the
  key and the set of distinct keys seen, so a key is always admitted at
  its *first* occurrence (when its true weight is exactly zero) and never
  re-admitted after eviction -- which is what makes the tracked weights
  exact under inserts *and* deletes, for every aggregation.
- :class:`DriftDetector` -- Page-Hinkley change detection over the
  observed-error series plus an upward mean-shift detector over sketch
  occupancy deltas (the :mod:`repro.obs.health` signal: a stream that
  starts exploring new key-space regions grows occupancy faster).  Emits
  structured :class:`DriftEvent` records.
- :class:`AccuracyTracker` -- ties a summary, a comparator and a detector
  together: ``tick()`` probes the summary on the sampled keys, exports
  ``accuracy_observed_are`` / ``accuracy_observed_epsilon`` /
  ``accuracy_false_positive_rate`` gauges, feeds the drift detector and
  records drift alarms in the flight recorder.

Everything is batched: the per-chunk cost of :meth:`observe_columns` is
one vectorized hash-mix plus a mask, so attaching a comparator to the
soak hot loop stays inside the existing <= 5% telemetry budget
(``BENCH_soak.json``, ``overhead`` section).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field, asdict
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.aggregation import Aggregation
from repro.hashing.labels import Label, label_keys
from repro.obs.instruments import OBS

__all__ = [
    "AccuracyReport",
    "AccuracyTracker",
    "DriftDetector",
    "DriftEvent",
    "PageHinkley",
    "RotatingShadowTruth",
    "ShadowTruthComparator",
    "shadow_truth_for",
]


# -- key mixing -------------------------------------------------------------

_MIX_C1 = np.uint64(0x9E3779B97F4A7C15)
_MIX_C2 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_C3 = np.uint64(0x94D049BB133111EB)
_U64_MAX = np.uint64(0xFFFFFFFFFFFFFFFF)


def _mix64(values: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer: a fast, well-distributed 64-bit mix."""
    z = values + _MIX_C1
    z = (z ^ (z >> np.uint64(30))) * _MIX_C2
    z = (z ^ (z >> np.uint64(27))) * _MIX_C3
    return z ^ (z >> np.uint64(31))


def _pair_ranks(source_keys: np.ndarray, target_keys: np.ndarray,
                seed: int, directed: bool) -> Tuple[np.ndarray, np.ndarray]:
    """Canonical pair key and its uniform rank for each edge.

    The rank is a pure function of the (canonicalised) key pair and the
    seed -- the property the comparator's exactness proof rests on.
    """
    s = source_keys.astype(np.uint64, copy=False)
    t = target_keys.astype(np.uint64, copy=False)
    if not directed:
        s, t = np.minimum(s, t), np.maximum(s, t)
    # Modular uint64 wraparound is the point of the mix; silence numpy's
    # overflow RuntimeWarning on the 0-d (scalar) path.
    with np.errstate(over="ignore"):
        pair = _mix64(s) * _MIX_C3 + _mix64(t + np.uint64(seed) * _MIX_C1)
        return pair, _mix64(pair)


# -- exact shadow truth ------------------------------------------------------


class ShadowTruthComparator:
    """Exact aggregated weights for a bottom-k uniform sample of edge keys.

    :param aggregation: must match the summary under observation; SUM and
        COUNT support :meth:`remove` / :meth:`remove_columns`, MIN and MAX
        are insert-only (mirroring the sketches).
    :param sample_size: tracked edge keys (``k``).  Memory is O(k).
    :param seed: seeds the rank hash; same seed, same sample.
    :param directed: canonicalise (x, y)/(y, x) for undirected streams.

    Exactness invariant (asserted by the property tests): for every
    currently sampled key, the stored weight equals replaying the entire
    stream for that key through the aggregation.  It holds because
    membership is bottom-k by a pure hash rank: a key whose rank is below
    the current threshold was below every earlier (larger) threshold, so
    it has been tracked since its first occurrence; evicted keys can
    never re-enter because the threshold only shrinks.
    """

    def __init__(self, aggregation: Aggregation = Aggregation.SUM,
                 sample_size: int = 256, seed: int = 0,
                 directed: bool = True):
        if sample_size < 1:
            raise ValueError(f"sample_size must be >= 1, got {sample_size}")
        self.aggregation = aggregation
        self.sample_size = sample_size
        self.seed = seed
        self.directed = directed
        #: pair-key -> [rank, source_label, target_label, value]
        self._tracked: Dict[int, List[Any]] = {}
        #: (-rank, key) max-heap over the tracked ranks (see _absorb)
        self._rank_heap: List[Tuple[int, int]] = []
        self._threshold = int(_U64_MAX)  # admit everything until full
        self.elements = 0
        self.total_weight = 0.0
        self.distinct_admissions = 0

    # -- maintenance --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._tracked)

    def observe(self, source: Label, target: Label,
                weight: float = 1.0) -> None:
        """Account one inserted stream element."""
        self.observe_columns([source], [target],
                             np.array([weight], dtype=np.float64))

    def remove(self, source: Label, target: Label,
               weight: float = 1.0) -> None:
        """Account one deleted stream element (SUM/COUNT only)."""
        self.remove_columns([source], [target],
                            np.array([weight], dtype=np.float64))

    def observe_edge(self, edge) -> None:
        """Hub-consumer entry point (one :class:`StreamEdge`)."""
        self.observe(edge.source, edge.target, edge.weight)

    def wrap(self, stream):
        """Yield the stream unchanged while accounting every element."""
        for edge in stream:
            self.observe(edge.source, edge.target, edge.weight)
            yield edge

    def hash_columns(self, sources: Sequence[Label],
                     targets: Sequence[Label]) -> Tuple[np.ndarray,
                                                        np.ndarray]:
        """The chunk's (pair-key, rank) arrays under this comparator's
        seed -- computable once and shared (via ``hashed=``) between
        comparators with the same seed and directedness."""
        return _pair_ranks(label_keys(sources), label_keys(targets),
                           self.seed, self.directed)

    def observe_columns(self, sources: Sequence[Label],
                        targets: Sequence[Label],
                        weights: Optional[np.ndarray] = None,
                        hashed: Optional[Tuple[np.ndarray,
                                               np.ndarray]] = None) -> int:
        """Vectorized batch insert accounting; the soak hot-loop entry.

        One hash-mix pass over the chunk (or a precomputed ``hashed``
        pair from :meth:`hash_columns`), a numpy reduction per distinct
        key that passes the bottom-k threshold, and a Python loop over
        only those keys.  Returns the number of elements accounted.
        """
        n = len(sources)
        if n == 0:
            return 0
        if weights is None:
            weights = np.ones(n)
        else:
            weights = np.asarray(weights, dtype=np.float64)
        self.elements += n
        self.total_weight += float(weights.sum())
        pair, ranks = (hashed if hashed is not None
                       else self.hash_columns(sources, targets))
        self._absorb_hits(pair, ranks, sources, targets, weights)
        return n

    def _absorb_hits(self, pair: np.ndarray, ranks: np.ndarray,
                     sources: Sequence[Label], targets: Sequence[Label],
                     weights: np.ndarray, offset: int = 0) -> None:
        """Absorb the elements whose rank passes the bottom-k threshold.

        ``pair``/``ranks`` may be slices of a chunk's hash arrays while
        ``sources``/``targets``/``weights`` stay whole-chunk (indexed at
        ``offset + i``), so a caller that hashed the chunk once can feed
        consecutive runs without re-slicing the label columns.

        Skewed streams make hits frequent -- a popular sampled key hits
        on *every* occurrence -- so the batch is reduced to one
        aggregate per distinct hit key in numpy before the Python loop.
        The reduction is order-insensitive and therefore exact: bottom-k
        membership is a pure function of the distinct keys seen, and a
        key admitted then evicted within the batch leaves no trace
        either way.
        """
        hits = np.flatnonzero(ranks <= np.uint64(self._threshold))
        if hits.size == 0:
            return
        agg = self.aggregation
        if hits.size > 16 and agg in (Aggregation.SUM, Aggregation.COUNT,
                                      Aggregation.MIN, Aggregation.MAX):
            uniq, inverse = np.unique(pair[hits], return_inverse=True)
            hit_weights = np.asarray(weights)[hits + offset]
            if agg is Aggregation.SUM:
                totals = np.bincount(inverse, weights=hit_weights,
                                     minlength=uniq.size)
            elif agg is Aggregation.COUNT:
                totals = np.bincount(inverse, minlength=uniq.size)
            elif agg is Aggregation.MIN:
                totals = np.full(uniq.size, np.inf)
                np.minimum.at(totals, inverse, hit_weights)
            else:
                totals = np.full(uniq.size, -np.inf)
                np.maximum.at(totals, inverse, hit_weights)
            counts = np.bincount(inverse, minlength=uniq.size)
            # First-occurrence index per unique key: reverse-order
            # assignment leaves the earliest hit last-written.
            first = np.empty(uniq.size, dtype=np.int64)
            first[inverse[::-1]] = hits[::-1]
            first_ranks = ranks[first]
            if uniq.size > self.sample_size:
                selected = self._cold_start_candidates(
                    uniq, first_ranks, totals, counts)
            else:
                selected = range(uniq.size)
            for j in selected:
                i = int(first[j]) + offset
                self._absorb_batch(int(uniq[j]), int(first_ranks[j]),
                                   sources[i], targets[i],
                                   float(totals[j]), int(counts[j]))
            return
        for i in hits.tolist():
            self._absorb(int(pair[i]), int(ranks[i]), sources[offset + i],
                         targets[offset + i], float(weights[offset + i]))

    def _cold_start_candidates(self, uniq: np.ndarray,
                               first_ranks: np.ndarray, totals: np.ndarray,
                               counts: np.ndarray) -> List[int]:
        """Prune a huge hit batch to the keys that can affect the sample.

        While the threshold is loose (cold start) nearly every element
        hits, but only (a) keys already tracked and (b) the batch's
        bottom-``sample_size`` new keys by rank can change the final
        state: the eventual tracked set is the bottom-k of the whole
        pool, so a new key outside the batch's own bottom-k can never be
        in it.  Applies (a)'s aggregates inline and returns (b)'s
        indices for the absorb loop.
        """
        if self._tracked:
            tracked_keys = np.fromiter(self._tracked.keys(),
                                       dtype=np.uint64,
                                       count=len(self._tracked))
            pos = np.minimum(np.searchsorted(uniq, tracked_keys),
                             uniq.size - 1)
            present = uniq[pos] == tracked_keys
            for p in pos[present].tolist():
                self._apply_batch(self._tracked[int(uniq[p])],
                                  float(totals[p]), int(counts[p]))
            candidates = np.ones(uniq.size, dtype=bool)
            candidates[pos[present]] = False
            candidates = np.flatnonzero(candidates)
        else:
            candidates = np.arange(uniq.size)
        k = self.sample_size
        if candidates.size > k:
            order = np.argpartition(first_ranks[candidates], k)[:k]
            candidates = candidates[order]
        return candidates.tolist()

    def remove_columns(self, sources: Sequence[Label],
                       targets: Sequence[Label],
                       weights: Optional[np.ndarray] = None) -> int:
        """Vectorized batch delete accounting (SUM/COUNT only)."""
        if not self.aggregation.invertible:
            raise ValueError(
                f"{self.aggregation.value} aggregation does not support "
                "deletion")
        n = len(sources)
        if n == 0:
            return 0
        if weights is None:
            weights = np.ones(n)
        else:
            weights = np.asarray(weights, dtype=np.float64)
        self.total_weight -= float(weights.sum())
        pair, ranks = _pair_ranks(label_keys(sources), label_keys(targets),
                                  self.seed, self.directed)
        hits = np.flatnonzero(ranks <= np.uint64(self._threshold))
        # Routed through _absorb_batch with a negated aggregate so a
        # deletion that precedes the key's first insertion (legal in a
        # turnstile stream) admits the key with a negative value instead
        # of being dropped -- otherwise the later insertion would start
        # from zero and break the replay-exactness invariant.
        for i in hits.tolist():
            self._absorb_batch(int(pair[i]), int(ranks[i]),
                               sources[i], targets[i],
                               -float(weights[i]), -1)
        return n

    def _absorb(self, key: int, rank: int, source: Label, target: Label,
                weight: float) -> None:
        entry = self._tracked.get(key)
        if entry is not None:
            self._apply(entry, weight)
            return
        # The max-heap mirrors ``_tracked`` exactly: a rank is a pure
        # function of its key and evicted keys can never re-enter, so no
        # lazy-deletion bookkeeping is needed -- eviction is one heappop
        # instead of an O(k) scan.
        if len(self._tracked) < self.sample_size:
            self._admit(key, rank, source, target, weight)
            heapq.heappush(self._rank_heap, (-rank, key))
            if len(self._tracked) == self.sample_size:
                self._threshold = -self._rank_heap[0][0]
            return
        if rank < self._threshold:
            _, worst = heapq.heappop(self._rank_heap)
            del self._tracked[worst]
            self._admit(key, rank, source, target, weight)
            heapq.heappush(self._rank_heap, (-rank, key))
            self._threshold = -self._rank_heap[0][0]

    def _absorb_batch(self, key: int, rank: int, source: Label,
                      target: Label, total: float, count: int) -> None:
        """Like :meth:`_absorb` for a pre-aggregated run of one key.

        ``total`` is the run's weights already reduced under the
        aggregation (sum for SUM, min for MIN, ...) and ``count`` its
        occurrence count (what COUNT accumulates).
        """
        entry = self._tracked.get(key)
        if entry is not None:
            self._apply_batch(entry, total, count)
            return
        if len(self._tracked) < self.sample_size:
            self._admit_batch(key, rank, source, target, total, count)
            heapq.heappush(self._rank_heap, (-rank, key))
            if len(self._tracked) == self.sample_size:
                self._threshold = -self._rank_heap[0][0]
            return
        if rank < self._threshold:
            _, worst = heapq.heappop(self._rank_heap)
            del self._tracked[worst]
            self._admit_batch(key, rank, source, target, total, count)
            heapq.heappush(self._rank_heap, (-rank, key))
            self._threshold = -self._rank_heap[0][0]

    def _admit(self, key: int, rank: int, source: Label, target: Label,
               weight: float) -> None:
        agg = self.aggregation
        if agg is Aggregation.COUNT:
            value = 1.0
        else:
            value = weight
        self._tracked[key] = [rank, source, target, value]
        self.distinct_admissions += 1

    def _apply(self, entry: List[Any], weight: float) -> None:
        agg = self.aggregation
        if agg is Aggregation.SUM:
            entry[3] += weight
        elif agg is Aggregation.COUNT:
            entry[3] += 1.0
        elif agg is Aggregation.MIN:
            entry[3] = min(entry[3], weight)
        else:  # MAX
            entry[3] = max(entry[3], weight)

    def _admit_batch(self, key: int, rank: int, source: Label,
                     target: Label, total: float, count: int) -> None:
        value = float(count) if self.aggregation is Aggregation.COUNT \
            else total
        self._tracked[key] = [rank, source, target, value]
        self.distinct_admissions += 1

    def _apply_batch(self, entry: List[Any], total: float,
                     count: int) -> None:
        agg = self.aggregation
        if agg is Aggregation.SUM:
            entry[3] += total
        elif agg is Aggregation.COUNT:
            entry[3] += float(count)
        elif agg is Aggregation.MIN:
            entry[3] = min(entry[3], total)
        else:  # MAX
            entry[3] = max(entry[3], total)

    # -- readout ------------------------------------------------------------

    def sampled(self) -> List[Tuple[Label, Label, float]]:
        """The tracked ``(source, target, exact_weight)`` triples."""
        return [(e[1], e[2], float(e[3]))
                for e in self._tracked.values()]

    def exact_weight(self, source: Label, target: Label) -> Optional[float]:
        """The exact weight of one key, or None when it is not sampled."""
        pair, ranks = _pair_ranks(label_keys([source]), label_keys([target]),
                                  self.seed, self.directed)
        entry = self._tracked.get(int(pair[0]))
        return None if entry is None else float(entry[3])

    def memory_bytes(self) -> int:
        """Rough footprint: ~160 B per tracked key (dict slot + entry)."""
        return 160 * len(self._tracked)


class RotatingShadowTruth(ShadowTruthComparator):
    """Shadow truth mirroring :class:`RotatingWindowTCM` bucket semantics.

    Tracked keys carry one exact aggregate *per live time bucket*; on a
    bucket-boundary crossing the expired buckets are dropped, exactly as
    the rotating window clears its oldest sub-sketches.  The merged exact
    weight of a sampled key therefore equals replaying the elements of
    the live buckets -- the same contents the window's merged view
    summarizes -- so observed error measures pure sketch error, never
    boundary staleness.

    Timestamps must be monotone (the rotating window enforces the same).
    """

    def __init__(self, horizon: float, buckets: int = 8, *,
                 aggregation: Aggregation = Aggregation.SUM,
                 sample_size: int = 256, seed: int = 0,
                 directed: bool = True):
        super().__init__(aggregation=aggregation, sample_size=sample_size,
                         seed=seed, directed=directed)
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        self.horizon = float(horizon)
        self.buckets = buckets
        self.span = self.horizon / buckets
        self._bucket_index: Optional[int] = None
        #: per-key entry[3] is a dict bucket_id -> aggregate
        #: per-bucket total weight for the observed-epsilon denominator
        self._bucket_weight: Dict[int, float] = {}

    # Entries hold {bucket: value} dicts instead of a scalar.

    def _admit(self, key: int, rank: int, source: Label, target: Label,
               weight: float) -> None:
        value = 1.0 if self.aggregation is Aggregation.COUNT else weight
        self._tracked[key] = [rank, source, target,
                              {self._bucket_index: value}]
        self.distinct_admissions += 1

    def _apply(self, entry: List[Any], weight: float) -> None:
        buckets = entry[3]
        bucket = self._bucket_index
        agg = self.aggregation
        current = buckets.get(bucket)
        if current is None:
            buckets[bucket] = (1.0 if agg is Aggregation.COUNT else weight)
        elif agg is Aggregation.SUM:
            buckets[bucket] = current + weight
        elif agg is Aggregation.COUNT:
            buckets[bucket] = current + 1.0
        elif agg is Aggregation.MIN:
            buckets[bucket] = min(current, weight)
        else:
            buckets[bucket] = max(current, weight)

    def _admit_batch(self, key: int, rank: int, source: Label,
                     target: Label, total: float, count: int) -> None:
        value = float(count) if self.aggregation is Aggregation.COUNT \
            else total
        self._tracked[key] = [rank, source, target,
                              {self._bucket_index: value}]
        self.distinct_admissions += 1

    def _apply_batch(self, entry: List[Any], total: float,
                     count: int) -> None:
        buckets = entry[3]
        bucket = self._bucket_index
        agg = self.aggregation
        value = float(count) if agg is Aggregation.COUNT else total
        current = buckets.get(bucket)
        if current is None:
            buckets[bucket] = value
        elif agg in (Aggregation.SUM, Aggregation.COUNT):
            buckets[bucket] = current + value
        elif agg is Aggregation.MIN:
            buckets[bucket] = min(current, value)
        else:
            buckets[bucket] = max(current, value)

    def advance_to(self, timestamp: float) -> None:
        """Rotate the truth buckets forward to ``timestamp``."""
        bucket = math.floor(timestamp / self.span)
        if self._bucket_index is not None and bucket <= self._bucket_index:
            return
        self._bucket_index = bucket
        oldest_live = bucket - self.buckets
        for entry in self._tracked.values():
            stale = [b for b in entry[3] if b < oldest_live]
            for b in stale:
                del entry[3][b]
        for b in [b for b in self._bucket_weight if b < oldest_live]:
            del self._bucket_weight[b]

    def observe_timestamped(self, sources: Sequence[Label],
                            targets: Sequence[Label],
                            weights: np.ndarray,
                            timestamps: np.ndarray,
                            hashed: Optional[Tuple[np.ndarray,
                                                   np.ndarray]] = None
                            ) -> int:
        """Batch insert accounting with per-element stream timestamps.

        Splits the (monotone) batch into per-bucket runs like
        :meth:`RotatingWindowTCM.observe_many`, rotating between runs.
        """
        n = len(sources)
        if n == 0:
            return 0
        weights = (np.ones(n) if weights is None
                   else np.asarray(weights, dtype=np.float64))
        timestamps = np.asarray(timestamps, dtype=np.float64)
        # Hash the whole chunk once; the per-bucket runs below reuse
        # slices of the key arrays instead of re-hashing list slices.
        pair, ranks = (hashed if hashed is not None
                       else self.hash_columns(sources, targets))
        self.elements += n
        self.total_weight += float(weights.sum())
        bucket_ids = np.floor(timestamps / self.span).astype(np.int64)
        splits = np.flatnonzero(np.diff(bucket_ids)) + 1
        for lo, hi in zip(np.concatenate(([0], splits)),
                          np.concatenate((splits, [n]))):
            lo, hi = int(lo), int(hi)
            self.advance_to(float(timestamps[lo]))
            self._bucket_weight[self._bucket_index] = (
                self._bucket_weight.get(self._bucket_index, 0.0)
                + float(np.sum(weights[lo:hi])))
            self._absorb_hits(pair[lo:hi], ranks[lo:hi], sources, targets,
                              weights, offset=lo)
        return n

    def observe_edge(self, edge) -> None:
        self.observe_timestamped([edge.source], [edge.target],
                                 np.array([edge.weight]),
                                 np.array([edge.timestamp]))

    @property
    def live_weight(self) -> float:
        """Total stream weight inside the live buckets."""
        return float(sum(self._bucket_weight.values()))

    def _merge_buckets(self, buckets: Dict[int, float]) -> float:
        if not buckets:
            return 0.0
        values = buckets.values()
        agg = self.aggregation
        if agg in (Aggregation.SUM, Aggregation.COUNT):
            return float(sum(values))
        return float(min(values) if agg is Aggregation.MIN else max(values))

    def sampled(self) -> List[Tuple[Label, Label, float]]:
        out = []
        for entry in self._tracked.values():
            weight = self._merge_buckets(entry[3])
            out.append((entry[1], entry[2], weight))
        return out

    def exact_weight(self, source: Label, target: Label) -> Optional[float]:
        pair, _ = _pair_ranks(label_keys([source]), label_keys([target]),
                              self.seed, self.directed)
        entry = self._tracked.get(int(pair[0]))
        return None if entry is None else self._merge_buckets(entry[3])


def shadow_truth_for(summary, *, sample_size: int = 256,
                     seed: int = 0) -> ShadowTruthComparator:
    """The matching comparator for a TCM or RotatingWindowTCM.

    Copies aggregation / directedness (and, for rotating windows, the
    horizon and bucket count) off the summary so the comparator's
    semantics line up with what the summary actually estimates.
    """
    horizon = getattr(summary, "horizon", None)
    if horizon is not None and hasattr(summary, "ring"):
        return RotatingShadowTruth(
            horizon, getattr(summary, "buckets", 8),
            aggregation=summary.aggregation, sample_size=sample_size,
            seed=seed, directed=summary.directed)
    return ShadowTruthComparator(
        aggregation=summary.aggregation, sample_size=sample_size,
        seed=seed, directed=summary.directed)


# -- drift detection ---------------------------------------------------------


@dataclass
class DriftEvent:
    """One structured drift alarm."""

    signal: str          #: "error" or "occupancy"
    direction: str       #: "up" or "down"
    index: int           #: tick number the alarm fired at
    value: float         #: the observation that triggered the alarm
    statistic: float     #: the detector statistic at alarm time
    threshold: float     #: the configured alarm threshold (lambda)
    timestamp: Optional[float] = None   #: stream time, when known

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


class PageHinkley:
    """Page-Hinkley sequential change detection for a scalar series.

    Accumulates ``m_t = sum(x_i - mean_i - delta)`` and alarms when the
    excursion ``m_t - min(m)`` exceeds ``lamb`` (upward shifts); the
    mirrored statistic catches downward shifts when ``bidirectional``.
    ``delta`` is the tolerated per-step magnitude (absorbs slow,
    legitimate trends), ``lamb`` the change magnitude that constitutes an
    alarm; the detector resets itself after alarming so repeated drift
    produces repeated events.
    """

    def __init__(self, delta: float = 0.005, lamb: float = 0.1,
                 min_samples: int = 8, bidirectional: bool = True):
        if lamb <= 0:
            raise ValueError(f"lamb must be positive, got {lamb}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        self.delta = delta
        self.lamb = lamb
        self.min_samples = min_samples
        self.bidirectional = bidirectional
        self.reset()

    def reset(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._cum_up = 0.0
        self._min_up = 0.0
        self._cum_down = 0.0
        self._max_down = 0.0

    @property
    def statistic(self) -> float:
        """The larger of the two current excursions."""
        up = self._cum_up - self._min_up
        down = self._max_down - self._cum_down
        return max(up, down if self.bidirectional else 0.0)

    def update(self, x: float) -> Optional[str]:
        """Feed one observation; returns "up"/"down" on alarm, else None."""
        self.n += 1
        self.mean += (x - self.mean) / self.n
        self._cum_up += x - self.mean - self.delta
        self._min_up = min(self._min_up, self._cum_up)
        self._cum_down += x - self.mean + self.delta
        self._max_down = max(self._max_down, self._cum_down)
        if self.n < self.min_samples:
            return None
        if self._cum_up - self._min_up > self.lamb:
            self.reset()
            return "up"
        if self.bidirectional and \
                self._max_down - self._cum_down > self.lamb:
            self.reset()
            return "down"
        return None


class DriftDetector:
    """Windowed drift detection over error and occupancy series.

    Two independent signals, each with its own Page-Hinkley detector:

    - ``error``: the observed-ARE series from the shadow-truth
      comparator.  Bidirectional -- a drifting stream can push sketch
      error up (new mass collides with sampled keys) or down (mass moves
      away from them); either is a distribution change worth an event.
    - ``occupancy``: per-tick *deltas* of occupied cells (from
      :func:`repro.obs.health.tcm_health`), normalized by total cells.
      Upward-only: a stationary stream's occupancy growth decays
      smoothly toward zero (never alarming an upward detector), while a
      parameter shift starts exploring new key-space regions and the
      growth rate jumps.

    ``update()`` returns the :class:`DriftEvent` list for one tick; all
    events are also appended to :attr:`events` (bounded).
    """

    def __init__(self, *,
                 error_delta: float = 0.01, error_lambda: float = 0.25,
                 occupancy_delta: float = 0.002,
                 occupancy_lambda: float = 0.02,
                 min_samples: int = 8, capacity: int = 256):
        self._error_ph = PageHinkley(error_delta, error_lambda,
                                     min_samples=min_samples,
                                     bidirectional=True)
        self._occupancy_ph = PageHinkley(occupancy_delta, occupancy_lambda,
                                         min_samples=min_samples,
                                         bidirectional=False)
        self.capacity = capacity
        self.events: List[DriftEvent] = []
        self.ticks = 0
        self._last_occupancy: Optional[float] = None

    def update(self, error: Optional[float] = None,
               occupancy: Optional[float] = None,
               timestamp: Optional[float] = None) -> List[DriftEvent]:
        """Feed one tick of signals; returns any events fired this tick.

        :param error: observed mean ARE (or any error statistic) for the
            tick; skipped when None.
        :param occupancy: the summary's current load factor in [0, 1];
            the detector differentiates it internally.
        """
        self.ticks += 1
        fired: List[DriftEvent] = []
        if error is not None:
            direction = self._error_ph.update(float(error))
            if direction is not None:
                fired.append(DriftEvent(
                    "error", direction, self.ticks, float(error),
                    self._error_ph.lamb, self._error_ph.lamb, timestamp))
        if occupancy is not None:
            occupancy = float(occupancy)
            if self._last_occupancy is not None:
                delta = occupancy - self._last_occupancy
                direction = self._occupancy_ph.update(delta)
                if direction is not None:
                    fired.append(DriftEvent(
                        "occupancy", direction, self.ticks, delta,
                        self._occupancy_ph.lamb, self._occupancy_ph.lamb,
                        timestamp))
            self._last_occupancy = occupancy
        for event in fired:
            self.events.append(event)
        if len(self.events) > self.capacity:
            del self.events[:len(self.events) - self.capacity]
        return fired

    @property
    def statistics(self) -> Dict[str, float]:
        return {"error": self._error_ph.statistic,
                "occupancy": self._occupancy_ph.statistic}


# -- the tracker -------------------------------------------------------------


@dataclass
class AccuracyReport:
    """One tick's accuracy readout over the sampled keys."""

    sampled_keys: int
    mean_are: float
    max_are: float
    #: max over sampled keys of (estimate - exact) / total stream weight,
    #: the empirical counterpart of the paper's epsilon in err <= eps * W.
    observed_epsilon: float
    false_positive_rate: float
    total_weight: float
    drift_events: List[DriftEvent] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        doc = asdict(self)
        doc["drift_events"] = [e.to_dict() for e in self.drift_events]
        return doc


class AccuracyTracker:
    """Continuous accuracy telemetry for one summary.

    :param summary: a :class:`~repro.core.tcm.TCM` or
        :class:`~repro.streams.rotating.RotatingWindowTCM`.
    :param comparator: a matching shadow-truth comparator; built via
        :func:`shadow_truth_for` when omitted.
    :param probes: never-inserted probe edges used to measure the false
        positive rate (a sketch answering > 0 for an absent edge).
    :param name: the ``summary`` label on the exported gauges.

    The caller feeds the *stream* to both the summary and the comparator
    (or uses :meth:`observe_columns`, which forwards to the comparator
    only -- the summary's own ingest path stays untouched), then calls
    :meth:`tick` at whatever cadence telemetry should refresh.
    """

    def __init__(self, summary, *, comparator=None, sample_size: int = 256,
                 seed: int = 0, probes: int = 64, detector=None,
                 name: str = "default", are_floor: float = 1.0,
                 flight=None):
        if probes < 0:
            raise ValueError(f"probes must be >= 0, got {probes}")
        self.summary = summary
        self.comparator = comparator if comparator is not None else \
            shadow_truth_for(summary, sample_size=sample_size, seed=seed)
        self.detector = detector if detector is not None else DriftDetector()
        self.name = name
        self.are_floor = are_floor
        self._flight = flight
        # Probe labels from a reserved namespace no real stream uses.
        self._probe_pairs = [
            (f"\x00obs-fpr-{seed}-{i}\x00a", f"\x00obs-fpr-{seed}-{i}\x00b")
            for i in range(probes)]
        self.ticks = 0
        self.last_report: Optional[AccuracyReport] = None

    # -- stream-side accounting ---------------------------------------------

    def observe_columns(self, sources, targets, weights=None,
                        timestamps=None, hashed=None) -> int:
        """Forward one ingest chunk to the shadow-truth comparator.

        ``hashed`` is an optional precomputed result of the comparator's
        :meth:`~ShadowTruthComparator.hash_columns` -- trackers sharing
        a seed can hash a chunk once and pass it to each of them.
        """
        if timestamps is not None and \
                isinstance(self.comparator, RotatingShadowTruth):
            weights = (np.ones(len(sources)) if weights is None
                       else np.asarray(weights, dtype=np.float64))
            return self.comparator.observe_timestamped(
                sources, targets, weights, timestamps, hashed=hashed)
        return self.comparator.observe_columns(sources, targets, weights,
                                               hashed=hashed)

    def remove_columns(self, sources, targets, weights=None) -> int:
        return self.comparator.remove_columns(sources, targets, weights)

    # -- readout ------------------------------------------------------------

    def _occupancy(self) -> Optional[float]:
        tcm = self.summary
        if hasattr(tcm, "merged"):            # rotating window: merged view
            tcm = tcm.merged
        sketches = getattr(tcm, "sketches", None)
        if not sketches:
            return None
        # One sketch stands in for all d: same dimensions, same stream,
        # independent hashes -- occupancies track each other closely,
        # and the drift detector only consumes the per-tick delta.
        sketch = sketches[0]
        cells = sketch.rows * sketch.cols
        return self._occupied(sketch) / cells if cells else None

    @staticmethod
    def _occupied(sketch) -> int:
        counter = getattr(sketch, "occupied_cells", None)
        if callable(counter):                 # SparseGraphSketch
            return int(counter())
        matrix = getattr(sketch, "matrix", None)
        if matrix is None:
            return 0
        return int(np.count_nonzero(np.asarray(matrix)))

    def tick(self, timestamp: Optional[float] = None) -> AccuracyReport:
        """Probe the summary, export gauges, run drift detection."""
        sampled = self.comparator.sampled()
        if sampled:
            pairs = [(s, t) for s, t, _ in sampled]
            truth = np.array([w for _, _, w in sampled])
            estimates = np.asarray(self.summary.edge_weights(pairs),
                                   dtype=np.float64)
            errors = np.abs(estimates - truth)
            are = errors / np.maximum(np.abs(truth), self.are_floor)
            mean_are = float(are.mean())
            max_are = float(are.max())
            total = self._denominator()
            observed_epsilon = (float((estimates - truth).max() / total)
                                if total > 0 else 0.0)
        else:
            mean_are = max_are = observed_epsilon = 0.0
        if self._probe_pairs:
            probe_estimates = np.asarray(
                self.summary.edge_weights(self._probe_pairs))
            fpr = float(np.count_nonzero(probe_estimates > 0)
                        / len(self._probe_pairs))
        else:
            fpr = 0.0

        occupancy = self._occupancy()
        events = self.detector.update(error=mean_are, occupancy=occupancy,
                                      timestamp=timestamp)
        self.ticks += 1
        report = AccuracyReport(
            sampled_keys=len(sampled), mean_are=mean_are, max_are=max_are,
            observed_epsilon=observed_epsilon, false_positive_rate=fpr,
            total_weight=self._denominator(), drift_events=events)
        self.last_report = report
        self._export(report, occupancy)
        if self._flight is not None:
            for event in events:
                self._flight.record_drift(event, summary=self.name)
        return report

    def _denominator(self) -> float:
        comparator = self.comparator
        if isinstance(comparator, RotatingShadowTruth):
            return comparator.live_weight
        return comparator.total_weight

    def _export(self, report: AccuracyReport,
                occupancy: Optional[float]) -> None:
        if not OBS.enabled:
            return
        name = self.name
        OBS.accuracy_observed_are.labels(name).set(report.mean_are)
        OBS.accuracy_observed_max_are.labels(name).set(report.max_are)
        OBS.accuracy_observed_epsilon.labels(name).set(
            report.observed_epsilon)
        OBS.accuracy_false_positive_rate.labels(name).set(
            report.false_positive_rate)
        OBS.accuracy_sampled_keys.labels(name).set(report.sampled_keys)
        OBS.accuracy_ticks.inc()
        for signal, value in self.detector.statistics.items():
            OBS.drift_statistic.labels(signal).set(value)
        for event in report.drift_events:
            OBS.drift_events.labels(event.signal).inc()
        if occupancy is not None:
            OBS.accuracy_summary_load_factor.labels(name).set(occupancy)
