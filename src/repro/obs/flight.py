"""Flight recorder: a bounded in-memory black box with a JSON post-mortem.

When a long-running summary goes wrong -- error drifting up, a sketch
saturating, latency spiking -- the question is always "what happened in
the minutes before?".  Metrics answer "what is the state *now*"; the
flight recorder answers the post-mortem question: a bounded ring buffer
of timestamped, structured events that costs O(capacity) memory forever
and can be dumped as one JSON document at any point (``tcm obs flight``).

Captured event kinds:

- ``span`` -- coarse timed operations, pulled from the default
  :class:`~repro.obs.tracing.Tracer` by :meth:`FlightRecorder.capture_spans`
  (incremental: only spans finished since the last capture are copied).
- ``saturation`` -- :func:`~repro.obs.health.saturation_warnings` strings
  recorded by :meth:`check_saturation` when a summary crosses the
  load/collision thresholds.  Deduplicated per (summary, warning) so a
  saturated sketch does not flood the buffer at every health tick.
- ``drift`` -- structured :class:`~repro.obs.accuracy.DriftEvent` alarms
  recorded by the accuracy tracker.
- ``mark`` -- free-form annotations ("phase: drift-injection", "rotation
  storm") from whoever is driving the workload.

The default instance :data:`FLIGHT` is what the CLI, the accuracy
tracker, and the soak benchmark share.
"""

from __future__ import annotations

import json
import re
import time
from collections import deque
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.obs.instruments import OBS
from repro.obs.tracing import TRACER, Tracer

__all__ = ["FLIGHT", "FlightEvent", "FlightRecorder"]

#: Strips the measured values (always x.xx-formatted) out of a saturation
#: warning so repeat warnings about the same sketch dedup to one event,
#: while integer sketch indexes stay distinguishing (see
#: :meth:`FlightRecorder.check_saturation`).
_NUMBER_RE = re.compile(r"\d+\.\d+")


class FlightEvent:
    """One recorded event: a kind, a wall-clock time, and a payload."""

    __slots__ = ("kind", "time", "payload")

    def __init__(self, kind: str, payload: Dict[str, Any],
                 timestamp: Optional[float] = None):
        self.kind = kind
        self.time = time.time() if timestamp is None else timestamp
        self.payload = payload

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "time": self.time, **self.payload}

    def __repr__(self) -> str:
        return f"FlightEvent({self.kind!r}, {self.payload!r})"


class FlightRecorder:
    """Bounded ring buffer of structured events with a JSON dump.

    :param capacity: events retained; the oldest are evicted first, so the
        dump always covers the most recent window of activity.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self._last_span_id = 0
        #: (summary, warning-text) pairs already recorded, so a sketch
        #: sitting above the threshold alarms once, not once per tick.
        self._seen_saturation: Set[Tuple[str, str]] = set()
        self.recorded = 0

    # -- recording ----------------------------------------------------------

    def record(self, kind: str, **payload) -> FlightEvent:
        """Append one event (the generic entry point)."""
        event = FlightEvent(kind, payload)
        self._events.append(event)
        self.recorded += 1
        if OBS.enabled:
            OBS.flight_events.labels(kind).inc()
        return event

    def mark(self, note: str, **payload) -> FlightEvent:
        """Record a free-form annotation (workload phases, injections)."""
        return self.record("mark", note=note, **payload)

    def record_drift(self, event, summary: str = "default") -> FlightEvent:
        """Record one accuracy-tracker drift alarm."""
        return self.record("drift", summary=summary, **event.to_dict())

    def capture_spans(self, tracer: Tracer = TRACER) -> int:
        """Copy spans finished since the last capture into the buffer.

        Incremental by span id (the tracer hands them out monotonically),
        so calling this at every telemetry tick is cheap and never
        duplicates an event.  Returns the number of spans captured.
        """
        captured = 0
        for span in tracer.spans():
            if span.span_id <= self._last_span_id:
                continue
            self._last_span_id = span.span_id
            self.record("span", **span.to_dict())
            captured += 1
        return captured

    def check_saturation(self, tcm, summary: str = "default",
                         load_threshold: float = 0.5,
                         collision_threshold: float = 0.5) -> List[str]:
        """Health-check a summary and record any *new* saturation warnings.

        Returns the (possibly empty) warning list for this check, whether
        or not each warning was already recorded.
        """
        from repro.obs.health import saturation_warnings, tcm_health
        if hasattr(tcm, "merged"):     # rotating window: check the view
            tcm = tcm.merged
        warnings = saturation_warnings(tcm_health(tcm),
                                       load_threshold=load_threshold,
                                       collision_threshold=collision_threshold)
        for warning in warnings:
            # Dedup on the warning *shape* (sketch index + kind), not its
            # text: the embedded load/collision values change every tick
            # and would defeat the dedup entirely.
            key = (summary, _NUMBER_RE.sub("", warning))
            if key not in self._seen_saturation:
                self._seen_saturation.add(key)
                self.record("saturation", summary=summary, warning=warning)
        return warnings

    # -- readout ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def events(self, kind: Optional[str] = None) -> List[FlightEvent]:
        """Recorded events oldest first, optionally filtered by kind."""
        snapshot = list(self._events)
        if kind is not None:
            snapshot = [e for e in snapshot if e.kind == kind]
        return snapshot

    def counts(self) -> Dict[str, int]:
        """Events currently buffered, per kind."""
        out: Dict[str, int] = {}
        for event in self._events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def dump(self) -> Dict[str, Any]:
        """The JSON-able post-mortem document."""
        return {
            "capacity": self.capacity,
            "recorded_total": self.recorded,
            "buffered": len(self._events),
            "counts": self.counts(),
            "events": [e.to_dict() for e in self._events],
        }

    def dump_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.dump(), indent=indent, default=str)

    def clear(self) -> None:
        """Drop all events and reset the dedup / span cursors."""
        self._events.clear()
        self._last_span_id = 0
        self._seen_saturation.clear()
        self.recorded = 0


#: The default process-wide recorder shared by the CLI, the accuracy
#: tracker, and the soak benchmark.
FLIGHT = FlightRecorder()
