"""Shard-and-merge distribution: the second deployment mode of §5.3.

:class:`~repro.distributed.cluster.DistributedTCM` broadcasts every
element to every worker (more independent sketches, lower error, full
ingest cost per worker).  :class:`ShardedTCM` is the throughput-oriented
alternative: each worker summarizes only its *shard* of the stream into a
same-configuration TCM, and mergeability (cell-wise addition) collapses
the shard summaries into exactly the summary of the whole stream.

Broadcast buys accuracy; sharding buys ingest bandwidth -- the summaries
it produces are bit-identical to a single-machine build, so there is no
accuracy cost at all, only no gain.
"""

from __future__ import annotations

import copy
import time
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence

from repro.core.aggregation import Aggregation
from repro.core.tcm import TCM
from repro.obs.instruments import OBS
from repro.obs.tracing import TRACER
from repro.streams.model import StreamEdge


class ShardedTCM:
    """Summarize stream shards on ``m`` workers and merge to one TCM.

    All workers share one TCM configuration (same ``seed``), which is
    what makes the shard summaries mergeable.
    """

    def __init__(self, m: int, d: int, width: int, *,
                 seed: Optional[int] = 0, directed: bool = True,
                 aggregation: Aggregation = Aggregation.SUM,
                 parallel: bool = True):
        if m < 1:
            raise ValueError(f"m must be >= 1, got {m}")
        self.m = m
        self._config = dict(d=d, width=width, seed=seed, directed=directed,
                            aggregation=aggregation)
        self._parallel = parallel

    def _build_shard(self, index: int, shard: Sequence[StreamEdge]) -> TCM:
        if not OBS.enabled:
            tcm = TCM(**self._config)
            tcm.ingest(shard)
            return tcm
        start = time.perf_counter()
        tcm = TCM(**self._config)
        tcm.ingest(shard)
        OBS.shard_build_seconds.observe(time.perf_counter() - start)
        OBS.shard_elements.labels(index).inc(len(shard))
        return tcm

    def summarize(self, shards: Sequence[Sequence[StreamEdge]]) -> TCM:
        """Build one TCM per shard (in parallel) and merge them.

        :param shards: e.g. the output of
            :func:`repro.streams.transforms.shard`.  Fewer shards than
            workers is fine; more raises, so misconfigured partitioners
            fail loudly.
        """
        if len(shards) > self.m:
            raise ValueError(
                f"{len(shards)} shards exceed the {self.m} workers")
        if OBS.enabled:
            OBS.shard_count.set(len(shards))
        if not shards:
            return TCM(**self._config)
        with TRACER.span("tcm.sharded.summarize", shards=len(shards),
                         workers=self.m):
            if self._parallel and len(shards) > 1:
                with ThreadPoolExecutor(max_workers=self.m) as pool:
                    partials: List[TCM] = list(
                        pool.map(self._build_shard,
                                 range(len(shards)), shards))
            else:
                partials = [self._build_shard(i, shard)
                            for i, shard in enumerate(shards)]
            merged = copy.deepcopy(partials[0])
            for partial in partials[1:]:
                if OBS.enabled:
                    start = time.perf_counter()
                    merged.merge_from(partial)
                    OBS.shard_merge_seconds.observe(
                        time.perf_counter() - start)
                else:
                    merged.merge_from(partial)
        return merged
