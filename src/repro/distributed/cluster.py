"""Distributed TCM: d sketches per worker across m simulated workers.

Paper Section 5.3: sketch construction and maintenance are independent
per sketch, so with ``m`` computing nodes one can afford ``d x m``
sketches, shrinking the collision probability; queries fan out to all
workers in parallel and merge like a single larger ensemble.

We simulate workers in-process with a thread pool.  Each worker owns a
:class:`~repro.core.tcm.TCM` seeded differently, so the combined system
behaves exactly like one TCM with ``d*m`` hash functions -- which the
ablation bench verifies.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence

from repro.core.aggregation import Aggregation
from repro.core.tcm import TCM
from repro.hashing.labels import Label


class SketchWorker:
    """One simulated computing node holding a ``d``-sketch TCM."""

    def __init__(self, worker_id: int, tcm: TCM):
        self.worker_id = worker_id
        self.tcm = tcm

    def update(self, source: Label, target: Label, weight: float) -> None:
        self.tcm.update(source, target, weight)

    def edge_weight(self, source: Label, target: Label) -> float:
        return self.tcm.edge_weight(source, target)

    def out_flow(self, node: Label) -> float:
        return self.tcm.out_flow(node)

    def in_flow(self, node: Label) -> float:
        return self.tcm.in_flow(node)

    def reachable(self, source: Label, target: Label) -> bool:
        return self.tcm.reachable(source, target)


class DistributedTCM:
    """``m`` workers, each with an independent ``d``-sketch TCM.

    Updates are broadcast to every worker (each worker must see the whole
    stream for its sketches to summarize it); queries run on all workers
    concurrently and merge with the same min/conjunction rules as a single
    TCM.

    :param m: number of workers.
    :param d: sketches per worker.
    :param width: square sketch width per sketch.
    :param parallel: evaluate queries with a thread pool (the simulation
        of Section 5.3's parallel fan-out); sequential otherwise.
    """

    def __init__(self, m: int, d: int, width: int, *,
                 seed: Optional[int] = 0, directed: bool = True,
                 aggregation: Aggregation = Aggregation.SUM,
                 parallel: bool = True):
        if m < 1:
            raise ValueError(f"m must be >= 1, got {m}")
        self.aggregation = aggregation
        self.directed = directed
        self._workers: List[SketchWorker] = [
            SketchWorker(i, TCM(d=d, width=width,
                                seed=(None if seed is None else seed + 1000 * i),
                                directed=directed, aggregation=aggregation))
            for i in range(m)
        ]
        self._pool: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(max_workers=m) if parallel and m > 1 else None)

    @property
    def workers(self) -> Sequence[SketchWorker]:
        return tuple(self._workers)

    @property
    def total_sketches(self) -> int:
        """The effective ``d*m`` ensemble size."""
        return sum(w.tcm.d for w in self._workers)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "DistributedTCM":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- maintenance -----------------------------------------------------------

    def update(self, source: Label, target: Label, weight: float = 1.0) -> None:
        for worker in self._workers:
            worker.update(source, target, weight)

    def ingest(self, stream) -> int:
        count = 0
        for edge in stream:
            self.update(edge.source, edge.target, edge.weight)
            count += 1
        return count

    # -- queries ------------------------------------------------------------------

    def _fan_out(self, call):
        if self._pool is None:
            return [call(worker) for worker in self._workers]
        futures = [self._pool.submit(call, worker) for worker in self._workers]
        return [future.result() for future in futures]

    def edge_weight(self, source: Label, target: Label) -> float:
        return self.aggregation.merge(
            self._fan_out(lambda w: w.edge_weight(source, target)))

    def out_flow(self, node: Label) -> float:
        return self.aggregation.merge(self._fan_out(lambda w: w.out_flow(node)))

    def in_flow(self, node: Label) -> float:
        return self.aggregation.merge(self._fan_out(lambda w: w.in_flow(node)))

    def reachable(self, source: Label, target: Label) -> bool:
        return all(self._fan_out(lambda w: w.reachable(source, target)))
