"""Simulated distributed TCM deployment (paper Section 5.3).

Two deployment modes:

- :class:`DistributedTCM` -- *broadcast*: every worker sees the whole
  stream with its own independent hash functions (d x m sketches, lower
  error).
- :class:`ShardedTCM` -- *shard-and-merge*: each worker summarizes a
  slice of the stream with a shared configuration; mergeability yields a
  summary bit-identical to a single-machine build (higher ingest
  bandwidth, unchanged error).
- :class:`ParallelTCMBuilder` / :func:`parallel_ingest` -- the
  single-machine realization of shard-and-merge: chunks dealt to
  ``multiprocessing`` workers over a bounded queue, per-worker TCMs with
  identical seeds, merged in worker order.
"""

from repro.distributed.cluster import DistributedTCM, SketchWorker
from repro.distributed.parallel import ParallelTCMBuilder, parallel_ingest
from repro.distributed.sharded import ShardedTCM

__all__ = ["DistributedTCM", "SketchWorker", "ShardedTCM",
           "ParallelTCMBuilder", "parallel_ingest"]
