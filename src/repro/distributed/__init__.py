"""Simulated distributed TCM deployment (paper Section 5.3).

Two deployment modes:

- :class:`DistributedTCM` -- *broadcast*: every worker sees the whole
  stream with its own independent hash functions (d x m sketches, lower
  error).
- :class:`ShardedTCM` -- *shard-and-merge*: each worker summarizes a
  slice of the stream with a shared configuration; mergeability yields a
  summary bit-identical to a single-machine build (higher ingest
  bandwidth, unchanged error).
"""

from repro.distributed.cluster import DistributedTCM, SketchWorker
from repro.distributed.sharded import ShardedTCM

__all__ = ["DistributedTCM", "SketchWorker", "ShardedTCM"]
