"""Parallel sharded construction on one machine via ``multiprocessing``.

:class:`~repro.distributed.sharded.ShardedTCM` models the *cluster*
deployment of §5.3 (pre-partitioned shards, thread pool -- fine for the
paper's semantics, but Python threads share one GIL so it buys no local
speedup).  :class:`ParallelTCMBuilder` is the single-machine engine the
ROADMAP's throughput goal needs: the stream is consumed lazily in
fixed-size chunks, chunks are dealt to ``workers`` OS processes, each
worker folds its chunks into a private TCM built from the *same seed*,
and mergeability (Section 3.3) collapses the per-worker summaries into
the summary of the whole stream.

Two transports implement that plan:

- **Shared memory** (the default for plain dense configs): one
  ``multiprocessing.shared_memory`` block holds a ring of input slots --
  uint64 source/target key columns plus float64 weights, written once by
  the feeder and read zero-copy by workers -- and a second block holds
  every worker's output tables (count matrices + min/max touched masks).
  Nothing but slot indices and tiny status tuples ever crosses a pickle
  boundary: label->key conversion happens once in the parent (one
  interning cache instead of ``workers`` cold ones), workers scatter
  straight into their shared tables via the kernel layer
  (:mod:`repro.core.kernels`), and the parent merges the tables cell-wise
  in worker order without deserializing a single Python object.
- **Queue fallback** for configurations whose state does not fit flat
  shared tables (``sparse=True`` dict cells, ``keep_labels=True`` label
  sets): columnar chunks are pickled to workers and per-worker TCMs are
  pickled back, exactly the original transport.

Exactness: merging same-seed sketches is cell-wise, so min/max/count
builds are bit-identical to a single-process build.  Sum builds add each
cell's per-worker subtotals instead of accumulating strictly in stream
order; for the integer and dyadic weights real streams carry that is the
same float, and the equivalence tests pin it.

Conservative ingest is *not* offered here: conservative summaries are not
linear, hence not mergeable (see :meth:`TCM.update_conservative`).
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import time
from multiprocessing import shared_memory
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.core.aggregation import Aggregation
from repro.core.tcm import DEFAULT_CHUNK_SIZE, TCM
from repro.hashing.labels import label_keys
from repro.obs.instruments import OBS
from repro.obs.tracing import TRACER

#: Chunks allowed to sit in flight per worker before the feeder blocks.
#: Two keeps every worker busy while bounding buffered elements at
#: ``2 * workers * chunk_size`` (queue transport) or the same number of
#: shared-memory slots (shm transport).
_QUEUE_DEPTH_PER_WORKER = 2

#: Bytes per element in an input slot: two uint64 keys + one float64.
_SLOT_ELEMENT_BYTES = 24

#: How long the feeder waits for a free input slot before concluding the
#: workers are gone.  Generous -- a slot frees after one chunk scatter,
#: normally milliseconds.
_SLOT_TIMEOUT_SECONDS = 600.0


def _default_workers() -> int:
    return max(1, os.cpu_count() or 1)


def _mp_context():
    # fork skips re-importing the world per worker; fall back to the
    # platform default where it is unavailable (e.g. Windows).
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None)


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing shared block without tracker double-counting.

    Before 3.13 (``track=False``) every attach re-registers the block
    with ``resource_tracker``, whose per-type cache is a set -- N workers
    collapse to one entry, and the N-1 surplus unregisters at exit spray
    KeyError warnings.  The parent owns the block's lifetime, so the
    workers' attachments suppress registration entirely.
    """
    from multiprocessing import resource_tracker
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _worker_table_bytes(tcm: TCM) -> int:
    """Bytes one worker's output tables occupy (matrices + touched masks)."""
    total = 0
    for sketch in tcm._sketches:
        total += sketch._matrix.nbytes
        if sketch._touched is not None:
            total += sketch._touched.nbytes
    return total


def _adopt_shared_tables(tcm: TCM, buf, offset: int) -> int:
    """Point a TCM's matrices/touched masks into a shared buffer.

    Returns the offset past this worker's region.  The freshly created
    arrays are zeroed explicitly -- newly created POSIX shm is
    zero-filled, but a recycled buffer would not be.
    """
    for sketch in tcm._sketches:
        shape = sketch._matrix.shape
        matrix = np.ndarray(shape, dtype=np.float64, buffer=buf,
                            offset=offset)
        matrix[:] = 0.0
        sketch._matrix = matrix
        offset += matrix.nbytes
        if sketch._touched is not None:
            touched = np.ndarray(shape, dtype=np.bool_, buffer=buf,
                                 offset=offset)
            touched[:] = False
            sketch._touched = touched
            offset += touched.nbytes
    return offset


def _fold_shared_tables(tcm: TCM, buf, offset: int) -> int:
    """Merge one worker's shared tables into ``tcm``, cell-wise.

    The zero-deserialization counterpart of :meth:`GraphSketch.merge_from`
    -- same combination rules, reading straight out of the shared block.
    Returns the offset past the worker's region.
    """
    for sketch in tcm._sketches:
        shape = sketch._matrix.shape
        table = np.ndarray(shape, dtype=np.float64, buffer=buf,
                           offset=offset)
        offset += table.nbytes
        sketch._epoch += 1
        if sketch.aggregation in (Aggregation.SUM, Aggregation.COUNT):
            sketch._matrix += table
            continue
        touched = np.ndarray(shape, dtype=np.bool_, buffer=buf,
                             offset=offset)
        offset += touched.nbytes
        combine = (np.minimum if sketch.aggregation is Aggregation.MIN
                   else np.maximum)
        both = sketch._touched & touched
        sketch._matrix = np.where(
            both, combine(sketch._matrix, table),
            np.where(touched, table, sketch._matrix))
        sketch._touched |= touched
    return offset


def _shm_worker(config: dict, index: int, in_name: str, out_name: str,
                chunk_size: int, task_queue, free_queue,
                result_queue) -> None:
    """Shared-memory worker: scatter key-column slots into shared tables."""
    start = time.perf_counter()
    shm_in = shm_out = None
    try:
        shm_in = _attach(in_name)
        shm_out = _attach(out_name)
        tcm = TCM(**config)
        _adopt_shared_tables(tcm, shm_out.buf,
                             index * _worker_table_bytes(tcm))
        slot_bytes = chunk_size * _SLOT_ELEMENT_BYTES
        chunks = 0
        while True:
            task = task_queue.get()
            if task is None:
                break
            slot, n = task
            try:
                base = slot * slot_bytes
                source_keys = np.ndarray((n,), dtype=np.uint64,
                                         buffer=shm_in.buf, offset=base)
                target_keys = np.ndarray(
                    (n,), dtype=np.uint64, buffer=shm_in.buf,
                    offset=base + chunk_size * 8)
                weights = np.ndarray(
                    (n,), dtype=np.float64, buffer=shm_in.buf,
                    offset=base + chunk_size * 16)
                tcm._apply_key_columns(source_keys, target_keys, weights,
                                       insert=True)
                chunks += 1
            finally:
                # The slot is consumed synchronously (canonicalization,
                # hashing and the scatter all copy or reduce), so it can
                # recycle as soon as the call returns -- or fails.
                free_queue.put(slot)
        result_queue.put(("ok", index, chunks, time.perf_counter() - start))
    except Exception as exc:  # surface instead of deadlocking the feeder
        result_queue.put(("error", index, f"{type(exc).__name__}: {exc}",
                          0, time.perf_counter() - start))
        # Keep draining tasks and recycling slots so the feeder and the
        # sibling workers' sentinels never block on a dead peer.
        while True:
            task = task_queue.get()
            if task is None:
                break
            free_queue.put(task[0])
    finally:
        if shm_in is not None:
            shm_in.close()
        if shm_out is not None:
            shm_out.close()


def _queue_worker(config: dict, index: int, task_queue,
                  result_queue) -> None:
    """Fallback worker: fold pickled columnar chunks into a private TCM."""
    start = time.perf_counter()
    try:
        tcm = TCM(**config)
        chunks = 0
        while True:
            task = task_queue.get()
            if task is None:
                break
            sources, targets, weights = task
            tcm.ingest_columns(sources, targets, np.asarray(weights))
            chunks += 1
        result_queue.put(
            ("ok", index, tcm, chunks, time.perf_counter() - start))
    except Exception as exc:  # surface instead of deadlocking the feeder
        result_queue.put(("error", index, f"{type(exc).__name__}: {exc}",
                          0, time.perf_counter() - start))
        # Drain remaining tasks so sibling workers' sentinels stay reachable
        # and the feeder never blocks on a full queue.
        while task_queue.get() is not None:
            pass


class ParallelTCMBuilder:
    """Build one TCM from a stream using ``workers`` processes.

    :param workers: worker process count; defaults to the CPU count.
    :param chunk_size: elements per task chunk (the same default as
        :meth:`TCM.ingest`).
    :param use_shared_memory: transport selection.  ``None`` (default)
        picks shared memory whenever the configuration supports it
        (plain dense sketches); ``False`` forces the pickling queue
        transport; ``True`` asserts shared memory and raises
        ``ValueError`` for configurations that cannot use it
        (``sparse=True`` / ``keep_labels=True``).
    :param single_core_fallback: when True (the default) a multi-worker
        build on a machine with one hardware core
        (``os.cpu_count() <= 1``) silently degrades to the single-process
        chunked engine instead of paying fork/IPC overhead for no
        parallelism -- the committed bench record
        (``parallel_vs_chunked`` in ``BENCH_ingest_throughput.json``)
        shows fan-out *loses* there.  The decision is recorded as a
        one-line reason in :attr:`last_build_info` and on the obs
        flight recorder.  Set False to force the requested transport
        regardless (benchmarks measuring the transports themselves do).
    :param tcm_config: forwarded to every worker's ``TCM(...)``; must
        include a concrete ``seed`` (it defaults to 0, which is concrete)
        so the per-worker sketches are mergeable.

    After :meth:`build`, :attr:`last_build_info` reports the transport
    used (``mode``), the worker count, and the shared-memory bytes that
    were mapped (also exported live on the
    ``parallel_shared_memory_bytes`` gauge).

    >>> builder = ParallelTCMBuilder(workers=2, d=2, width=32, seed=3)
    >>> tcm = builder.build([])
    >>> tcm.d
    2
    """

    def __init__(self, workers: Optional[int] = None,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 use_shared_memory: Optional[bool] = None,
                 single_core_fallback: bool = True, **tcm_config):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if tcm_config.get("seed", 0) is None:
            raise ValueError(
                "parallel builds need a concrete seed; seed=None would "
                "give every worker incompatible hash functions")
        shm_capable = (not tcm_config.get("sparse")
                       and not tcm_config.get("keep_labels"))
        if use_shared_memory and not shm_capable:
            raise ValueError(
                "shared-memory transport needs plain dense sketches; "
                "sparse=True / keep_labels=True configurations use the "
                "queue transport (use_shared_memory=False or None)")
        self.workers = workers if workers is not None else _default_workers()
        self.chunk_size = chunk_size
        self.use_shared_memory = (shm_capable if use_shared_memory is None
                                  else bool(use_shared_memory))
        self.single_core_fallback = single_core_fallback
        self._config = dict(tcm_config)
        self.last_build_info: dict = {}

    # -- chunking -------------------------------------------------------------

    def _chunk_columns(self, stream: Iterable) -> Iterable[Tuple[list, list, list]]:
        iterator = iter(stream)
        while True:
            chunk = list(itertools.islice(iterator, self.chunk_size))
            if not chunk:
                return
            # Ship flat columns, not StreamEdge objects: pickling three
            # lists is ~5x cheaper than 64k dataclass instances.
            yield ([e.source for e in chunk],
                   [e.target for e in chunk],
                   [e.weight for e in chunk])

    def _chunk_key_columns(self, stream: Iterable):
        """Chunks as (uint64 keys, uint64 keys, float64 weights) arrays.

        Label->key conversion happens here, in the parent: one warm
        interning cache beats ``workers`` cold ones, and workers then
        never see a label object.  Weights are *not* validated here --
        validation stays in the workers so a poisoned element surfaces
        as a worker failure exactly like the queue transport.
        """
        iterator = iter(stream)
        while True:
            chunk = list(itertools.islice(iterator, self.chunk_size))
            if not chunk:
                return
            yield (label_keys([e.source for e in chunk]),
                   label_keys([e.target for e in chunk]),
                   np.array([e.weight for e in chunk], dtype=np.float64))

    # -- build ----------------------------------------------------------------

    def build(self, stream: Iterable) -> TCM:
        """Consume the stream once and return the merged summary."""
        if self.workers == 1:
            tcm = TCM(**self._config)
            tcm.ingest(stream, chunk_size=self.chunk_size)
            self.last_build_info = {"mode": "single", "workers": 1,
                                    "shm_bytes": 0}
            return tcm
        cores = os.cpu_count() or 1
        if self.single_core_fallback and cores <= 1:
            # Fan-out on one hardware core only adds fork + transport
            # overhead (the bench record's parallel_vs_chunked section
            # measures the loss); take the chunked engine instead and
            # say so once, where operators can see it.
            reason = (f"parallel build fell back to single-process "
                      f"chunked ingest: requested {self.workers} workers "
                      f"but os.cpu_count()={cores}")
            from repro.obs.flight import FLIGHT
            FLIGHT.mark("parallel single-core fallback",
                        requested_workers=self.workers, cpu_count=cores)
            tcm = TCM(**self._config)
            tcm.ingest(stream, chunk_size=self.chunk_size)
            self.last_build_info = {"mode": "single_fallback", "workers": 1,
                                    "requested_workers": self.workers,
                                    "shm_bytes": 0, "reason": reason}
            return tcm
        if OBS.enabled:
            OBS.parallel_workers.set(self.workers)
        if self.use_shared_memory:
            return self._build_shared_memory(stream)
        return self._build_queue(stream)

    def _build_shared_memory(self, stream: Iterable) -> TCM:
        merged = TCM(**self._config)
        slots = _QUEUE_DEPTH_PER_WORKER * self.workers
        slot_bytes = self.chunk_size * _SLOT_ELEMENT_BYTES
        table_bytes = _worker_table_bytes(merged)
        in_size = slots * slot_bytes
        out_size = self.workers * table_bytes
        shm_in = shared_memory.SharedMemory(create=True, size=in_size)
        shm_out = shared_memory.SharedMemory(create=True, size=out_size)
        total_bytes = in_size + out_size
        self.last_build_info = {"mode": "shared_memory",
                                "workers": self.workers,
                                "shm_bytes": total_bytes}
        if OBS.enabled:
            OBS.parallel_shm_bytes.set(total_bytes)
        ctx = _mp_context()
        task_queue = ctx.Queue()
        free_queue = ctx.Queue()
        result_queue = ctx.Queue()
        for slot in range(slots):
            free_queue.put(slot)
        processes = [
            ctx.Process(target=_shm_worker,
                        args=(self._config, i, shm_in.name, shm_out.name,
                              self.chunk_size, task_queue, free_queue,
                              result_queue),
                        daemon=True)
            for i in range(self.workers)
        ]
        try:
            with TRACER.span("tcm.parallel.build", workers=self.workers,
                             chunk_size=self.chunk_size,
                             transport="shared_memory"):
                for process in processes:
                    process.start()
                try:
                    in_view = np.ndarray((in_size,), dtype=np.uint8,
                                         buffer=shm_in.buf)
                    for columns in self._chunk_key_columns(stream):
                        source_keys, target_keys, weights = columns
                        n = len(source_keys)
                        try:
                            slot = free_queue.get(
                                timeout=_SLOT_TIMEOUT_SECONDS)
                        except Exception:
                            raise RuntimeError(
                                "parallel build stalled: no worker "
                                "returned an input slot "
                                f"in {_SLOT_TIMEOUT_SECONDS:.0f}s") from None
                        base = slot * slot_bytes
                        in_view[base:base + 8 * n] = \
                            source_keys.view(np.uint8)
                        in_view[base + self.chunk_size * 8:
                                base + self.chunk_size * 8 + 8 * n] = \
                            target_keys.view(np.uint8)
                        in_view[base + self.chunk_size * 16:
                                base + self.chunk_size * 16 + 8 * n] = \
                            weights.view(np.uint8)
                        task_queue.put((slot, n))
                    for _ in processes:
                        task_queue.put(None)
                    failure: Optional[str] = None
                    for _ in processes:
                        status, index, payload, *rest = result_queue.get()
                        if status == "error":
                            failure = failure or f"worker {index}: {payload}"
                            continue
                        chunks, elapsed = payload, rest[0]
                        if OBS.enabled:
                            OBS.parallel_worker_seconds.observe(elapsed)
                            OBS.parallel_worker_chunks.labels(index).inc(
                                chunks)
                    if failure is not None:
                        raise RuntimeError(
                            f"parallel build failed in {failure}")
                finally:
                    for process in processes:
                        process.join(timeout=30)
                        if process.is_alive():
                            process.terminate()
                # Merge in worker order so the result is deterministic
                # for a given chunk->worker assignment; per-cell sums are
                # grouping-independent for the integer/dyadic weights real
                # streams carry, making the merged summary deterministic
                # outright (see module docstring).
                offset = 0
                for index in range(self.workers):
                    if OBS.enabled:
                        start = time.perf_counter()
                        offset = _fold_shared_tables(merged, shm_out.buf,
                                                     offset)
                        OBS.parallel_merge_seconds.observe(
                            time.perf_counter() - start)
                    else:
                        offset = _fold_shared_tables(merged, shm_out.buf,
                                                     offset)
        finally:
            if OBS.enabled:
                OBS.parallel_shm_bytes.set(0)
            shm_in.close()
            shm_out.close()
            shm_in.unlink()
            shm_out.unlink()
        return merged

    def _build_queue(self, stream: Iterable) -> TCM:
        self.last_build_info = {"mode": "queue", "workers": self.workers,
                                "shm_bytes": 0}
        ctx = _mp_context()
        task_queue = ctx.Queue(
            maxsize=_QUEUE_DEPTH_PER_WORKER * self.workers)
        result_queue = ctx.Queue()
        processes = [
            ctx.Process(target=_queue_worker,
                        args=(self._config, i, task_queue, result_queue),
                        daemon=True)
            for i in range(self.workers)
        ]
        with TRACER.span("tcm.parallel.build", workers=self.workers,
                         chunk_size=self.chunk_size, transport="queue"):
            for process in processes:
                process.start()
            try:
                for columns in self._chunk_columns(stream):
                    task_queue.put(columns)
                for _ in processes:
                    task_queue.put(None)
                results: List[Optional[TCM]] = [None] * self.workers
                failure: Optional[str] = None
                for _ in processes:
                    status, index, payload, chunks, elapsed = \
                        result_queue.get()
                    if status == "error":
                        failure = failure or f"worker {index}: {payload}"
                        continue
                    results[index] = payload
                    if OBS.enabled:
                        OBS.parallel_worker_seconds.observe(elapsed)
                        OBS.parallel_worker_chunks.labels(index).inc(chunks)
                if failure is not None:
                    raise RuntimeError(
                        f"parallel build failed in {failure}")
            finally:
                for process in processes:
                    process.join(timeout=30)
                    if process.is_alive():
                        process.terminate()
            # Merge in worker order so the result is deterministic for a
            # given (stream, workers, chunk_size) triple.
            merged = results[0]
            for partial in results[1:]:
                if OBS.enabled:
                    start = time.perf_counter()
                    merged.merge_from(partial)
                    OBS.parallel_merge_seconds.observe(
                        time.perf_counter() - start)
                else:
                    merged.merge_from(partial)
        return merged


def parallel_ingest(stream: Iterable, *, workers: Optional[int] = None,
                    chunk_size: int = DEFAULT_CHUNK_SIZE,
                    use_shared_memory: Optional[bool] = None,
                    single_core_fallback: bool = True,
                    **tcm_config) -> TCM:
    """One-call parallel build: shard ``stream`` across processes and merge.

    ``tcm_config`` is any :class:`TCM` constructor configuration
    (``d``/``width``/``seed``/``directed``/``aggregation``/...).

    >>> from repro.streams.model import StreamEdge
    >>> edges = [StreamEdge("a", "b", 2.0), StreamEdge("b", "c", 1.0)]
    >>> tcm = parallel_ingest(edges, workers=1, d=2, width=32, seed=1)
    >>> tcm.edge_weight("a", "b")
    2.0
    """
    if tcm_config.get("aggregation") not in (None, Aggregation.SUM,
                                             Aggregation.COUNT,
                                             Aggregation.MIN,
                                             Aggregation.MAX):
        raise ValueError("unsupported aggregation for parallel builds")
    directed = getattr(stream, "directed", tcm_config.pop("directed", True))
    builder = ParallelTCMBuilder(workers=workers, chunk_size=chunk_size,
                                 use_shared_memory=use_shared_memory,
                                 single_core_fallback=single_core_fallback,
                                 directed=directed, **tcm_config)
    return builder.build(stream)
