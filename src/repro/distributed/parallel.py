"""Parallel sharded construction on one machine via ``multiprocessing``.

:class:`~repro.distributed.sharded.ShardedTCM` models the *cluster*
deployment of §5.3 (pre-partitioned shards, thread pool -- fine for the
paper's semantics, but Python threads share one GIL so it buys no local
speedup).  :class:`ParallelTCMBuilder` is the single-machine engine the
ROADMAP's throughput goal needs: the stream is consumed lazily in
fixed-size chunks, chunks are dealt round-robin to ``workers`` OS
processes over a bounded queue (constant memory end to end), each worker
folds its chunks into a private TCM built from the *same seed*, and
mergeability (Section 3.3) collapses the per-worker summaries into the
summary of the whole stream.

Exactness: merging same-seed sketches is cell-wise, so min/max/count
builds are bit-identical to a single-process build.  Sum builds add each
cell's per-worker subtotals instead of accumulating strictly in stream
order; for the integer and dyadic weights real streams carry that is the
same float, and the equivalence tests pin it.

Conservative ingest is *not* offered here: conservative summaries are not
linear, hence not mergeable (see :meth:`TCM.update_conservative`).
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import time
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.core.aggregation import Aggregation
from repro.core.tcm import DEFAULT_CHUNK_SIZE, TCM
from repro.obs.instruments import OBS
from repro.obs.tracing import TRACER

#: Chunks allowed to sit in the task queue per worker before the feeder
#: blocks.  Two keeps every worker busy while bounding buffered elements
#: at ``2 * workers * chunk_size``.
_QUEUE_DEPTH_PER_WORKER = 2


def _default_workers() -> int:
    return max(1, os.cpu_count() or 1)


def _mp_context():
    # fork skips re-importing the world per worker; fall back to the
    # platform default where it is unavailable (e.g. Windows).
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None)


def _shard_worker(config: dict, index: int, task_queue, result_queue) -> None:
    """Worker loop: fold columnar chunks into a private same-seed TCM."""
    start = time.perf_counter()
    try:
        tcm = TCM(**config)
        chunks = 0
        while True:
            task = task_queue.get()
            if task is None:
                break
            sources, targets, weights = task
            tcm.ingest_columns(sources, targets, np.asarray(weights))
            chunks += 1
        result_queue.put(
            ("ok", index, tcm, chunks, time.perf_counter() - start))
    except Exception as exc:  # surface instead of deadlocking the feeder
        result_queue.put(("error", index, f"{type(exc).__name__}: {exc}",
                          0, time.perf_counter() - start))
        # Drain remaining tasks so sibling workers' sentinels stay reachable
        # and the feeder never blocks on a full queue.
        while task_queue.get() is not None:
            pass


class ParallelTCMBuilder:
    """Build one TCM from a stream using ``workers`` processes.

    :param workers: worker process count; defaults to the CPU count.
    :param chunk_size: elements per task chunk (the same default as
        :meth:`TCM.ingest`).
    :param tcm_config: forwarded to every worker's ``TCM(...)``; must
        include a concrete ``seed`` (it defaults to 0, which is concrete)
        so the per-worker sketches are mergeable.

    >>> builder = ParallelTCMBuilder(workers=2, d=2, width=32, seed=3)
    >>> tcm = builder.build([])
    >>> tcm.d
    2
    """

    def __init__(self, workers: Optional[int] = None,
                 chunk_size: int = DEFAULT_CHUNK_SIZE, **tcm_config):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if tcm_config.get("seed", 0) is None:
            raise ValueError(
                "parallel builds need a concrete seed; seed=None would "
                "give every worker incompatible hash functions")
        self.workers = workers if workers is not None else _default_workers()
        self.chunk_size = chunk_size
        self._config = dict(tcm_config)

    def _chunk_columns(self, stream: Iterable) -> Iterable[Tuple[list, list, list]]:
        iterator = iter(stream)
        while True:
            chunk = list(itertools.islice(iterator, self.chunk_size))
            if not chunk:
                return
            # Ship flat columns, not StreamEdge objects: pickling three
            # lists is ~5x cheaper than 64k dataclass instances.
            yield ([e.source for e in chunk],
                   [e.target for e in chunk],
                   [e.weight for e in chunk])

    def build(self, stream: Iterable) -> TCM:
        """Consume the stream once and return the merged summary."""
        if self.workers == 1:
            tcm = TCM(**self._config)
            tcm.ingest(stream, chunk_size=self.chunk_size)
            return tcm
        if OBS.enabled:
            OBS.parallel_workers.set(self.workers)
        ctx = _mp_context()
        task_queue = ctx.Queue(
            maxsize=_QUEUE_DEPTH_PER_WORKER * self.workers)
        result_queue = ctx.Queue()
        processes = [
            ctx.Process(target=_shard_worker,
                        args=(self._config, i, task_queue, result_queue),
                        daemon=True)
            for i in range(self.workers)
        ]
        with TRACER.span("tcm.parallel.build", workers=self.workers,
                         chunk_size=self.chunk_size):
            for process in processes:
                process.start()
            try:
                for columns in self._chunk_columns(stream):
                    task_queue.put(columns)
                for _ in processes:
                    task_queue.put(None)
                results: List[Optional[TCM]] = [None] * self.workers
                failure: Optional[str] = None
                for _ in processes:
                    status, index, payload, chunks, elapsed = \
                        result_queue.get()
                    if status == "error":
                        failure = failure or f"worker {index}: {payload}"
                        continue
                    results[index] = payload
                    if OBS.enabled:
                        OBS.parallel_worker_seconds.observe(elapsed)
                        OBS.parallel_worker_chunks.labels(index).inc(chunks)
                if failure is not None:
                    raise RuntimeError(
                        f"parallel build failed in {failure}")
            finally:
                for process in processes:
                    process.join(timeout=30)
                    if process.is_alive():
                        process.terminate()
            # Merge in worker order so the result is deterministic for a
            # given (stream, workers, chunk_size) triple.
            merged = results[0]
            for partial in results[1:]:
                if OBS.enabled:
                    start = time.perf_counter()
                    merged.merge_from(partial)
                    OBS.parallel_merge_seconds.observe(
                        time.perf_counter() - start)
                else:
                    merged.merge_from(partial)
        return merged


def parallel_ingest(stream: Iterable, *, workers: Optional[int] = None,
                    chunk_size: int = DEFAULT_CHUNK_SIZE,
                    **tcm_config) -> TCM:
    """One-call parallel build: shard ``stream`` across processes and merge.

    ``tcm_config`` is any :class:`TCM` constructor configuration
    (``d``/``width``/``seed``/``directed``/``aggregation``/...).

    >>> from repro.streams.model import StreamEdge
    >>> edges = [StreamEdge("a", "b", 2.0), StreamEdge("b", "c", 1.0)]
    >>> tcm = parallel_ingest(edges, workers=1, d=2, width=32, seed=1)
    >>> tcm.edge_weight("a", "b")
    2.0
    """
    if tcm_config.get("aggregation") not in (None, Aggregation.SUM,
                                             Aggregation.COUNT,
                                             Aggregation.MIN,
                                             Aggregation.MAX):
        raise ValueError("unsupported aggregation for parallel builds")
    directed = getattr(stream, "directed", tcm_config.pop("directed", True))
    builder = ParallelTCMBuilder(workers=workers, chunk_size=chunk_size,
                                 directed=directed, **tcm_config)
    return builder.build(stream)
