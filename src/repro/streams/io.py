"""Plain-text graph-stream I/O.

The on-disk format is one element per line::

    source target weight timestamp

Fields are whitespace-separated (or comma-separated for ``.csv``);
``weight`` and ``timestamp`` are optional and default to 1 and the line
number respectively.  Lines starting with ``#`` and blank lines are
skipped; a leading CSV header line naming its first column ``source`` or
``src`` is skipped too.  ``.gz`` paths are decompressed transparently.
This matches the edge-list formats of SNAP / GTGraph exports, so real
datasets drop in without conversion.
"""

from __future__ import annotations

import gzip
import os
from typing import IO, Iterator, Union

from repro.streams.model import GraphStream, StreamEdge

PathLike = Union[str, "os.PathLike[str]"]

_HEADER_NAMES = {"source", "src", "from"}


def _open_text(path: PathLike, mode: str) -> IO[str]:
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def _split_fields(line: str, comma_separated: bool) -> list:
    if comma_separated:
        return [field.strip() for field in line.split(",")]
    return line.split()


def iter_stream_file(path: PathLike) -> Iterator[StreamEdge]:
    """Lazily yield :class:`StreamEdge` elements from ``path``.

    Accepts whitespace-separated edge lists and comma-separated ``.csv``
    files (with or without a header), optionally gzip-compressed
    (``.gz``).

    :raises ValueError: on malformed lines, with the line number included
        so corrupt dumps are diagnosable.
    """
    name = str(path)
    if name.endswith(".gz"):
        name = name[:-3]
    comma_separated = name.endswith(".csv")
    with _open_text(path, "r") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = _split_fields(line, comma_separated)
            if lineno == 1 and parts and parts[0].lower() in _HEADER_NAMES:
                continue  # CSV header row
            if len(parts) < 2 or len(parts) > 4:
                raise ValueError(
                    f"{path}:{lineno}: expected 2-4 fields, got {len(parts)}")
            source, target = parts[0], parts[1]
            try:
                weight = float(parts[2]) if len(parts) >= 3 else 1.0
                timestamp = float(parts[3]) if len(parts) == 4 else float(lineno)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: bad numeric field") from exc
            yield StreamEdge(source, target, weight, timestamp)


def read_stream(path: PathLike, directed: bool = True) -> GraphStream:
    """Load a whole stream file into a :class:`GraphStream`."""
    return GraphStream(directed=directed, edges=iter_stream_file(path))


def write_stream(stream: GraphStream, path: PathLike) -> int:
    """Write ``stream`` to ``path`` (gzip when it ends in ``.gz``);
    returns the number of elements written."""
    count = 0
    with _open_text(path, "w") as handle:
        handle.write("# source target weight timestamp\n")
        for edge in stream:
            # .17g keeps float weights bit-exact through the round trip.
            handle.write(f"{edge.source} {edge.target} "
                         f"{edge.weight:.17g} {edge.timestamp:.17g}\n")
            count += 1
    return count
