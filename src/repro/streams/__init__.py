"""Graph-stream substrate.

A *graph stream* (paper Section 3.1) is a sequence of elements
``(x, y; t)`` -- edge ``(x, y)`` with an optional weight observed at time
``t``.  The stream defines a multigraph: the same edge may occur many times
and its weights aggregate.

This package provides the stream model (:class:`StreamEdge`,
:class:`GraphStream`), synthetic workload generators standing in for the
paper's DBLP / CAIDA IP-flow / GTGraph / Twitter datasets
(:mod:`repro.streams.generators`), plain-text stream I/O
(:mod:`repro.streams.io`) and sliding time-windows -- exact windows via
batched deletions (:mod:`repro.streams.window`) and approximate rotating
sub-sketch windows (:mod:`repro.streams.rotating`).
"""

from repro.streams.model import GraphStream, StreamEdge
from repro.streams.generators import (
    barabasi_albert,
    clique_stream,
    dblp_like,
    erdos_renyi,
    ipflow_like,
    path_stream,
    rmat,
    rmat_edges,
    rmat_edges_drifting,
    rmat_edges_timestamped,
    star_stream,
    twitter_like,
    zipf_weights,
)
from repro.streams.io import read_stream, write_stream
from repro.streams.rotating import RotatingWindowTCM
from repro.streams.window import SlidingWindow

__all__ = [
    "StreamEdge",
    "GraphStream",
    "rmat",
    "rmat_edges",
    "rmat_edges_drifting",
    "rmat_edges_timestamped",
    "zipf_weights",
    "dblp_like",
    "ipflow_like",
    "twitter_like",
    "erdos_renyi",
    "barabasi_albert",
    "path_stream",
    "star_stream",
    "clique_stream",
    "read_stream",
    "write_stream",
    "SlidingWindow",
    "RotatingWindowTCM",
]
