"""Rotating sub-sketch windows: coarse expiry without per-element deletion.

:class:`~repro.streams.window.SlidingWindow` keeps the window *exact* by
replaying every expired element as a deletion -- which requires buffering
the raw live elements (O(window) memory next to the sketch) and only works
for the invertible aggregations.  :class:`RotatingWindowTCM` is the classic
bucketed alternative: stream time is cut into ``B`` equal buckets per
horizon, each bucket gets its own same-seed sub-TCM, and crossing a bucket
boundary expires the oldest bucket with one O(cells / B)
:meth:`~repro.core.tcm.TCM.clear` -- no element buffer, no deletions, any
aggregation (including min/max, which the exact window cannot support).

The price is boundary coarseness: the summary covers *at most one extra
bucket span* of stream beyond the horizon.  Concretely, with current
bucket ``b = floor(t / span)`` the ring keeps buckets ``b-B .. b``
(``B + 1`` sub-sketches), whose oldest start ``(b-B) * span = b*span - H
<= t - H`` -- so every element inside the true window is always covered
(estimates never fall below the exact window's), and the surplus is
limited to elements in ``[(b-B)*span, t-H)``, a half-open span shorter
than one bucket.  Queries are served by a merged view that is rebuilt
lazily (sub-TCMs are same-seed, hence mergeable) and cached until the
next mutation -- between rotations, repeated queries cost one staleness
check, and the rebuild bumps the merged sketches' epochs so the query
engine's cached indexes invalidate exactly when the view changes.

Cost model (vs the exact window, docs/PERFORMANCE.md "Window path"):
ingest is one ``update_many`` scatter into the current sub-TCM (d of the
exact path's, no buffer append); expiry is amortized O(cells/B) per bucket
crossing instead of O(expired elements); memory is ``(B + 2) x`` one TCM
(ring + merged view) instead of one TCM + the live-element buffer.
"""

from __future__ import annotations

import itertools
import math
import threading
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.aggregation import Aggregation
from repro.hashing.labels import Label, label_keys
from repro.obs.instruments import OBS
from repro.streams.model import StreamEdge
from repro.streams.window import DEFAULT_WINDOW_CHUNK


class RotatingWindowTCM:
    """An approximate sliding-window TCM built from a ring of sub-sketches.

    :param horizon: window length in stream time units.
    :param buckets: sub-sketches per horizon (``B``).  Larger ``B`` means
        tighter boundaries (staleness < ``horizon / B``) and cheaper
        individual rotations, at ``B + 2`` TCMs of memory.
    :param kwargs: forwarded to every sub-:class:`TCM` (``d``, ``width``,
        ``directed``, ``aggregation``, ``keep_labels``, ``sparse``).
        ``seed`` must not be ``None``: sub-sketches can only merge into
        the query view when they share hash functions.
    """

    def __init__(self, horizon: float, buckets: int = 8, *,
                 d: int = 4, width: int = 256,
                 seed: Optional[int] = 0, directed: bool = True,
                 aggregation: Aggregation = Aggregation.SUM,
                 keep_labels: bool = False, sparse: bool = False):
        # Deferred: repro.core.tcm pulls repro.analytics, which imports
        # this package -- a module-level import here would be circular.
        from repro.core.tcm import TCM
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        if seed is None:
            raise ValueError(
                "rotating windows need a fixed seed: sub-sketches must "
                "share hash functions to merge into the query view")
        self.horizon = float(horizon)
        self.buckets = buckets
        self.span = self.horizon / buckets
        self.directed = directed
        self.aggregation = aggregation
        config = dict(d=d, width=width, seed=seed, directed=directed,
                      aggregation=aggregation, keep_labels=keep_labels,
                      sparse=sparse)
        # B + 1 slots: with current bucket b the ring holds b-B .. b, so
        # the oldest live bucket starts at or before t - horizon and the
        # true window is always fully covered (see the module docstring).
        self._ring: List[TCM] = [TCM(**config) for _ in range(buckets + 1)]
        self._merged = TCM(**config)
        self._merged_stale = False
        self._bucket_index: Optional[int] = None
        self._watermark = float("-inf")
        # Maintenance (advance/observe/rotation) and the lazy merged-view
        # rebuild are serialized so a server can advance the window from
        # one thread while another queries: rotations clear sub-sketches
        # in place, which must never interleave with a half-built merge.
        # Re-entrant because observe_* advance internally.
        self._lock = threading.RLock()

    # -- structure ------------------------------------------------------------

    @property
    def watermark(self) -> float:
        """The latest timestamp observed (or advanced to)."""
        return self._watermark

    @property
    def max_staleness(self) -> float:
        """Upper bound on extra stream time the view may cover.

        The merged view summarizes ``[t - horizon - s, t]`` for some
        ``0 <= s < max_staleness == horizon / buckets``.
        """
        return self.span

    @property
    def ring(self) -> Tuple[TCM, ...]:
        """The sub-sketches, oldest-to-newest rotation slots."""
        return tuple(self._ring)

    @property
    def current(self) -> TCM:
        """The sub-TCM absorbing the current bucket's elements."""
        if self._bucket_index is None:
            return self._ring[0]
        return self._ring[self._bucket_index % len(self._ring)]

    def memory_bytes(self) -> int:
        """Footprint of the ring plus the cached merged view."""
        return (sum(t.memory_bytes() for t in self._ring)
                + self._merged.memory_bytes())

    @property
    def nbytes(self) -> int:
        return self.memory_bytes()

    # -- maintenance ------------------------------------------------------------

    def _bucket_of(self, timestamp: float) -> int:
        return math.floor(timestamp / self.span)

    def _rotate_to(self, bucket: int) -> None:
        """Advance the ring so ``bucket`` is current, clearing expired slots."""
        if self._bucket_index is None:
            self._bucket_index = bucket
            return
        steps = bucket - self._bucket_index
        if steps <= 0:
            return
        ring_length = len(self._ring)
        if steps >= ring_length:
            # The whole ring aged out (a long quiet gap); wipe everything.
            for tcm in self._ring:
                tcm.clear()
            rotations = ring_length
        else:
            for k in range(1, steps + 1):
                self._ring[(self._bucket_index + k) % ring_length].clear()
            rotations = steps
        self._bucket_index = bucket
        self._merged_stale = True
        if OBS.enabled:
            OBS.window_rotations.inc(rotations)

    def advance_to(self, timestamp: float) -> None:
        """Move the watermark forward, rotating out expired buckets.

        Thread-safe: rotation (which clears expired sub-sketches in
        place) is serialized against concurrent observes and the merged
        view's rebuild.
        """
        with self._lock:
            if timestamp < self._watermark:
                raise ValueError(
                    f"cannot move watermark backwards to {timestamp} "
                    f"(currently {self._watermark})")
            self._watermark = timestamp
            self._rotate_to(self._bucket_of(timestamp))

    def observe(self, source: Label, target: Label, weight: float = 1.0,
                timestamp: Optional[float] = None) -> None:
        """Ingest one element at ``timestamp`` (default: current watermark)."""
        with self._lock:
            if timestamp is None:
                timestamp = self._watermark \
                    if math.isfinite(self._watermark) else 0.0
            self.advance_to(timestamp)
            self.current.update(source, target, weight)
            self._merged_stale = True
        if OBS.enabled:
            OBS.window_observed.inc()

    def observe_many(self, edges: Sequence[StreamEdge]) -> int:
        """Ingest a batch of timestamp-ordered elements.

        The batch is split into runs per bucket (one ``searchsorted``-
        style scan over the monotone timestamps) and each run lands in
        its sub-TCM with one vectorized :meth:`TCM.ingest_columns` call,
        rotating between runs.  Returns the number of elements ingested.
        """
        if not isinstance(edges, (list, tuple)):
            edges = list(edges)
        n = len(edges)
        if n == 0:
            return 0
        with self._lock:
            timestamps = np.fromiter((e.timestamp for e in edges),
                                     dtype=np.float64, count=n)
            previous = np.empty(n, dtype=np.float64)
            previous[0] = self._watermark
            previous[1:] = timestamps[:-1]
            disorder = timestamps < previous
            if disorder.any():
                i = int(np.argmax(disorder))
                raise ValueError(
                    f"out-of-order element at t={timestamps[i]} "
                    f"(watermark is {previous[i]})")
            weights = np.fromiter((e.weight for e in edges),
                                  dtype=np.float64, count=n)
            sources = [e.source for e in edges]
            targets = [e.target for e in edges]
            bucket_ids = np.floor(timestamps / self.span).astype(np.int64)
            splits = np.flatnonzero(np.diff(bucket_ids)) + 1
            for lo, hi in zip(np.concatenate(([0], splits)),
                              np.concatenate((splits, [n]))):
                lo, hi = int(lo), int(hi)
                self._rotate_to(int(bucket_ids[lo]))
                self.current.ingest_columns(sources[lo:hi], targets[lo:hi],
                                            weights[lo:hi])
            self._watermark = float(timestamps[-1])
            self._merged_stale = True
        if OBS.enabled:
            OBS.window_observed.inc(n)
        return n

    def observe_columns(self, sources: Sequence[Label],
                        targets: Sequence[Label],
                        weights: Optional[np.ndarray] = None,
                        timestamps: Optional[np.ndarray] = None) -> int:
        """Columnar batch ingest for service layers: labels *or* raw keys.

        The rotating mirror of :meth:`~repro.core.tcm.TCM.ingest_keys`,
        built for the :mod:`repro.server` coalescer, whose batches
        aggregate concurrent requests and therefore cannot promise the
        ordering :meth:`observe_many` demands.  Differences:

        - accepts parallel columns -- label sequences or pre-hashed
          ``uint64`` key arrays -- instead of :class:`StreamEdge`\\ s;
        - **late elements are clamped, not rejected**: a timestamp below
          the current watermark is raised to the watermark (the standard
          late-arrival policy; each clamp counts on
          ``window_late_clamped_total``), so one slow client can never
          poison a shared tenant with a ``ValueError``;
        - within-batch disorder is fixed up with one stable argsort
          before bucket-splitting;
        - thread-safe under the same lock as :meth:`advance_to`.

        ``weights`` defaults to all-ones; ``timestamps`` defaults to the
        current watermark (ingest without advancing time).  Returns the
        number of elements ingested.
        """
        n = len(sources)
        if len(targets) != n:
            raise ValueError(f"got {n} sources but {len(targets)} targets")
        if n == 0:
            return 0
        source_keys = label_keys(sources)
        target_keys = label_keys(targets)
        if weights is None:
            weights = np.ones(n)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape[0] != n:
                raise ValueError(
                    f"got {n} sources but {weights.shape[0]} weights")
        with self._lock:
            watermark = self._watermark
            if timestamps is None:
                base = watermark if math.isfinite(watermark) else 0.0
                ts = np.full(n, base)
            else:
                ts = np.array(timestamps, dtype=np.float64)
                if ts.shape[0] != n:
                    raise ValueError(
                        f"got {n} sources but {ts.shape[0]} timestamps")
                if math.isfinite(watermark):
                    late = ts < watermark
                    if late.any():
                        ts[late] = watermark
                        if OBS.enabled:
                            OBS.window_late_clamped.inc(int(late.sum()))
                else:
                    # First-ever batch: nothing to clamp against.
                    pass
                if n > 1 and (np.diff(ts) < 0).any():
                    order = np.argsort(ts, kind="stable")
                    ts = ts[order]
                    source_keys = source_keys[order]
                    target_keys = target_keys[order]
                    weights = weights[order]
            bucket_ids = np.floor(ts / self.span).astype(np.int64)
            splits = np.flatnonzero(np.diff(bucket_ids)) + 1
            for lo, hi in zip(np.concatenate(([0], splits)),
                              np.concatenate((splits, [n]))):
                lo, hi = int(lo), int(hi)
                self._rotate_to(int(bucket_ids[lo]))
                self.current.ingest_columns(source_keys[lo:hi],
                                            target_keys[lo:hi],
                                            weights[lo:hi])
            self._watermark = max(watermark, float(ts[-1]))
            self._merged_stale = True
        if OBS.enabled:
            OBS.window_observed.inc(n)
        return n

    def consume(self, stream: Iterable[StreamEdge], *,
                chunk_size: int = DEFAULT_WINDOW_CHUNK) -> int:
        """Drive a whole (lazy) stream through the window in chunks."""
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        count = 0
        iterator = iter(stream)
        while True:
            chunk = list(itertools.islice(iterator, chunk_size))
            if not chunk:
                break
            count += self.observe_many(chunk)
        return count

    def shadow_truth(self, *, sample_size: int = 256, seed: int = 0):
        """A matched shadow-truth comparator for accuracy telemetry.

        Returns a :class:`~repro.obs.accuracy.RotatingShadowTruth` with
        this window's horizon, bucket count, aggregation and
        directedness, so its exact per-key weights expire on the same
        bucket boundaries the sub-sketches rotate on.  Feed it the same
        elements (``observe_timestamped`` next to :meth:`observe_many`)
        and compare via :class:`~repro.obs.accuracy.AccuracyTracker`.
        """
        # Deferred for symmetry with the TCM import above: repro.obs's
        # package init pulls repro.core, which imports this package.
        from repro.obs.accuracy import shadow_truth_for
        return shadow_truth_for(self, sample_size=sample_size, seed=seed)

    # -- queries (all over the merged live-bucket view) -----------------------

    @property
    def merged(self) -> TCM:
        """The union-of-live-buckets summary serving every query.

        Rebuilt lazily -- ``clear()`` plus one ``merge_from`` per ring
        slot -- on the first query after a mutation, then cached.  The
        rebuild bumps the merged sketches' epochs, so the view's
        :attr:`~repro.core.tcm.TCM.query_engine` invalidates its cached
        indexes exactly when the contents actually change; between
        rotations, repeated queries run entirely off the caches.
        """
        with self._lock:
            if self._merged_stale:
                self._merged.clear()
                for tcm in self._ring:
                    self._merged.merge_from(tcm)
                self._merged_stale = False
            return self._merged

    def edge_weight(self, source: Label, target: Label) -> float:
        return self.merged.edge_weight(source, target)

    def edge_weights(self, pairs: Sequence[Tuple[Label, Label]]) -> np.ndarray:
        return self.merged.edge_weights(pairs)

    def out_flow(self, node: Label) -> float:
        return self.merged.out_flow(node)

    def in_flow(self, node: Label) -> float:
        return self.merged.in_flow(node)

    def flow(self, node: Label) -> float:
        return self.merged.flow(node)

    def out_flows(self, nodes: Sequence[Label]) -> np.ndarray:
        return self.merged.out_flows(nodes)

    def in_flows(self, nodes: Sequence[Label]) -> np.ndarray:
        return self.merged.in_flows(nodes)

    def flows(self, nodes: Sequence[Label]) -> np.ndarray:
        return self.merged.flows(nodes)

    def reachable(self, source: Label, target: Label,
                  max_hops: Optional[int] = None) -> bool:
        return self.merged.reachable(source, target, max_hops=max_hops)

    def reachable_many(self,
                       pairs: Sequence[Tuple[Label, Label]]) -> np.ndarray:
        return self.merged.reachable_many(pairs)

    def total_weight_estimate(self) -> float:
        return self.merged.total_weight_estimate()

    def __repr__(self) -> str:
        return (f"RotatingWindowTCM(horizon={self.horizon}, "
                f"buckets={self.buckets}, span={self.span}, "
                f"agg={self.aggregation.value})")
