"""Synthetic graph-stream workload generators.

These stand in for the paper's four datasets (Section 6.1.1), none of which
can be redistributed here:

- :func:`dblp_like` -- undirected co-authorship stream (DBLP substitute):
  Zipf author productivity, papers with 2-4 authors, weight-1 elements.
  Matches the paper's small weight range ([1, 146] there).
- :func:`ipflow_like` -- directed packet trace (CAIDA substitute): Zipf
  endpoint popularity, heavy-tailed (log-normal) packet sizes as weights.
  Matches the paper's huge weight range ([46, 1.1e8] there).
- :func:`rmat` -- R-MAT power-law graphs (GTGraph substitute) with Zipfian
  multiplicities, exactly the generative recipe the paper describes.
- :func:`rmat_edges` -- the lazy, constant-memory R-MAT element generator
  the million-edge ingest benchmarks stream from.
- :func:`twitter_like` -- large power-law link structure used only for
  throughput experiments, as in the paper.

Plus small deterministic shapes (:func:`path_stream`, :func:`star_stream`,
:func:`clique_stream`, :func:`erdos_renyi`) used by subgraph-query
workloads and tests.  All generators are seeded and fully reproducible.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.streams.model import GraphStream, StreamEdge


def zipf_weights(count: int, alpha: float = 1.5, max_weight: int = 200,
                 seed: Optional[int] = None) -> np.ndarray:
    """Zipfian integer weights in ``[1, max_weight]``.

    The paper adds Zipf-distributed multiplicities to GTGraph edges; we use
    a truncated Zipf so the weight range is controlled (GTGraph's observed
    range in Fig. 8(c) is [1, 199]).
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if alpha <= 1.0:
        raise ValueError(f"zipf exponent must be > 1, got {alpha}")
    rng = np.random.default_rng(seed)
    raw = rng.zipf(alpha, size=count)
    return np.minimum(raw, max_weight).astype(np.int64)


def _shifted_zipf_choice(rng: np.random.Generator, n: int, size: int,
                         exponent: float, shift: float) -> np.ndarray:
    """Draw ``size`` ranks in [0, n) with P(r) ~ (r + shift)^-exponent.

    Unlike ``rng.zipf(a) % n`` (whose rank-1 mass is 1/zeta(a), i.e. 30-50%
    for typical a -- wildly more skewed than real co-authorship or traffic
    data), the shift bounds the head: the most popular item gets a few
    percent of the draws, matching the skew regimes of DBLP and CAIDA.
    """
    probabilities = (np.arange(n, dtype=float) + shift) ** (-exponent)
    probabilities /= probabilities.sum()
    return rng.choice(n, size=size, p=probabilities)


def rmat(n_nodes: int, n_edges: int,
         partition: Tuple[float, float, float, float] = (0.45, 0.15, 0.15, 0.25),
         weights: Optional[Sequence[float]] = None,
         seed: Optional[int] = None,
         directed: bool = True) -> GraphStream:
    """Generate an R-MAT graph stream (Chakrabarti et al., SDM 2004).

    ``n_nodes`` is rounded up to the next power of two internally; emitted
    node ids are integers in ``[0, n_nodes)`` (ids beyond the requested
    range are folded back with a modulo, preserving the skew).

    :param partition: the (a, b, c, d) quadrant probabilities; the default
        is the canonical skewed setting producing power-law degrees.
    :param weights: per-edge weights; defaults to all-ones.  Pass
        :func:`zipf_weights` output to reproduce the paper's GTGraph setup.
    """
    if n_nodes < 2:
        raise ValueError(f"n_nodes must be >= 2, got {n_nodes}")
    if n_edges < 0:
        raise ValueError(f"n_edges must be >= 0, got {n_edges}")
    a, b, c, d = partition
    total = a + b + c + d
    if not np.isclose(total, 1.0):
        raise ValueError(f"partition probabilities must sum to 1, got {total}")

    scale = int(np.ceil(np.log2(n_nodes)))
    rng = np.random.default_rng(seed)

    src = np.zeros(n_edges, dtype=np.int64)
    dst = np.zeros(n_edges, dtype=np.int64)
    # Vectorized bit-recursive quadrant choice: one uniform draw per bit
    # level for all edges at once.
    thresholds = np.array([a, a + b, a + b + c])
    for _ in range(scale):
        u = rng.random(n_edges)
        quadrant = np.searchsorted(thresholds, u)  # 0..3
        src = (src << 1) | (quadrant >> 1)
        dst = (dst << 1) | (quadrant & 1)
    src %= n_nodes
    dst %= n_nodes

    if weights is None:
        weight_arr = np.ones(n_edges)
    else:
        weight_arr = np.asarray(weights, dtype=float)
        if len(weight_arr) != n_edges:
            raise ValueError(
                f"got {len(weight_arr)} weights for {n_edges} edges")

    stream = GraphStream(directed=directed)
    for t in range(n_edges):
        stream.add(int(src[t]), int(dst[t]), float(weight_arr[t]), float(t))
    return stream


def rmat_edges(n_nodes: int, n_edges: int,
               partition: Tuple[float, float, float, float] = (0.45, 0.15,
                                                               0.15, 0.25),
               seed: Optional[int] = None,
               block: int = 65536) -> Iterator[StreamEdge]:
    """Lazy R-MAT element generator: constant memory for any ``n_edges``.

    The streaming counterpart of :func:`rmat` for throughput work at
    stream scale: quadrant recursion runs vectorized one ``block`` at a
    time and elements are yielded without ever materializing a
    :class:`GraphStream` (which holds every element *plus* exact
    aggregates -- hundreds of bytes per edge).  The ingest benchmarks
    drive million-edge builds through this with flat peak RSS.

    Weights are 1 (the paper's Fig. 1 convention); compose with
    :func:`repro.streams.transforms.map_weights` for weighted variants.
    Block-local RNG draws mean the edge sequence differs from
    :func:`rmat` under the same seed; within this function it is fully
    deterministic for a given ``(seed, block)``.
    """
    if n_nodes < 2:
        raise ValueError(f"n_nodes must be >= 2, got {n_nodes}")
    if n_edges < 0:
        raise ValueError(f"n_edges must be >= 0, got {n_edges}")
    if block < 1:
        raise ValueError(f"block must be >= 1, got {block}")
    a, b, c, d = partition
    total = a + b + c + d
    if not np.isclose(total, 1.0):
        raise ValueError(f"partition probabilities must sum to 1, got {total}")
    scale = int(np.ceil(np.log2(n_nodes)))
    rng = np.random.default_rng(seed)
    thresholds = np.array([a, a + b, a + b + c])
    emitted = 0
    while emitted < n_edges:
        size = min(block, n_edges - emitted)
        src = np.zeros(size, dtype=np.int64)
        dst = np.zeros(size, dtype=np.int64)
        for _ in range(scale):
            quadrant = np.searchsorted(thresholds, rng.random(size))
            src = (src << 1) | (quadrant >> 1)
            dst = (dst << 1) | (quadrant & 1)
        src %= n_nodes
        dst %= n_nodes
        for offset, (s, t) in enumerate(zip(src.tolist(), dst.tolist())):
            yield StreamEdge(s, t, 1.0, float(emitted + offset))
        emitted += size


def rmat_edges_timestamped(
        n_nodes: int, n_edges: int,
        partition: Tuple[float, float, float, float] = (0.45, 0.15,
                                                        0.15, 0.25),
        seed: Optional[int] = None,
        block: int = 65536,
        rate: float = 1.0,
        jitter: float = 0.5) -> Iterator[StreamEdge]:
    """Lazy R-MAT elements with irregular, monotone arrival timestamps.

    :func:`rmat_edges` stamps element ``i`` with timestamp ``i`` -- fine
    for build benchmarks, useless for window workloads, where expiry
    batches are shaped by the *arrival process*.  This variant emits the
    exact same edge sequence for a given ``(seed, block)`` (timestamps
    come from an independent RNG stream, so the topology draws are
    untouched) but spaces arrivals by jittered inter-arrival gaps::

        gap_i ~ (1 / rate) * Uniform(1 - jitter, 1 + jitter)

    so timestamps are strictly increasing with mean rate ``rate``
    elements per stream-time unit, and a window of horizon ``H`` holds
    ``~ rate * H`` live elements whose per-advance expiry counts vary --
    the regime the window throughput benchmark measures.

    :param rate: mean arrivals per stream-time unit (> 0).
    :param jitter: half-width of the relative gap spread, in ``[0, 1)``;
        0 gives perfectly regular arrivals.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if not 0 <= jitter < 1:
        raise ValueError(f"jitter must be in [0, 1), got {jitter}")
    # Independent RNG for the arrival process: offsetting the seed keeps
    # the edge-topology stream identical to rmat_edges(seed).
    clock_rng = np.random.default_rng(
        None if seed is None else seed + 0x5EED)
    clock = 0.0
    pending: List[StreamEdge] = []
    for edge in rmat_edges(n_nodes, n_edges, partition=partition,
                           seed=seed, block=block):
        pending.append(edge)
        if len(pending) == block:
            yield from _stamp_arrivals(pending, clock_rng, rate, jitter,
                                       clock)
            clock = pending[-1].timestamp
            pending = []
    if pending:
        yield from _stamp_arrivals(pending, clock_rng, rate, jitter, clock)


def rmat_edges_drifting(
        n_nodes: int, n_edges: int,
        partition: Tuple[float, float, float, float] = (0.45, 0.15,
                                                        0.15, 0.25),
        drift_partition: Tuple[float, float, float, float] = (0.15, 0.25,
                                                              0.45, 0.15),
        drift_start: float = 0.5,
        drift_span: float = 0.1,
        seed: Optional[int] = None,
        block: int = 65536,
        rate: float = 1.0,
        jitter: float = 0.5) -> Iterator[StreamEdge]:
    """Lazy R-MAT elements whose quadrant parameters shift mid-stream.

    A concept-drift workload for the accuracy telemetry and the soak
    gate: the first ``drift_start`` fraction of the stream is stationary
    R-MAT under ``partition``, then over the next ``drift_span`` fraction
    the quadrant probabilities interpolate linearly to
    ``drift_partition``, and the remainder is stationary under the new
    regime.  The default shift moves the hot quadrant from ``a`` to
    ``c`` -- mass relocates to previously cold key-space regions, the
    degradation mode gSketch's static partitioning suffers under and the
    event the drift detector must fire on.

    Timestamps follow the same jittered arrival process as
    :func:`rmat_edges_timestamped` (independent RNG stream at
    ``seed + 0x5EED``), so window workloads can consume this directly.
    """
    if not 0 <= drift_start <= 1:
        raise ValueError(f"drift_start must be in [0, 1], got {drift_start}")
    if not 0 <= drift_span <= 1 - drift_start:
        raise ValueError(
            f"drift_span must be in [0, {1 - drift_start:g}] "
            f"(drift_start={drift_start:g}), got {drift_span}")
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if not 0 <= jitter < 1:
        raise ValueError(f"jitter must be in [0, 1), got {jitter}")
    if n_nodes < 2:
        raise ValueError(f"n_nodes must be >= 2, got {n_nodes}")
    if block < 1:
        raise ValueError(f"block must be >= 1, got {block}")
    start_p = np.asarray(partition, dtype=float)
    end_p = np.asarray(drift_partition, dtype=float)
    for name, p in (("partition", start_p), ("drift_partition", end_p)):
        if not np.isclose(p.sum(), 1.0):
            raise ValueError(
                f"{name} probabilities must sum to 1, got {p.sum()}")
    scale = int(np.ceil(np.log2(n_nodes)))
    rng = np.random.default_rng(seed)
    clock_rng = np.random.default_rng(
        None if seed is None else seed + 0x5EED)
    clock = 0.0
    emitted = 0
    while emitted < n_edges:
        size = min(block, n_edges - emitted)
        # One interpolation factor per block (blocks are small relative
        # to the drift span, so the ramp is still effectively smooth).
        progress = (emitted + size / 2) / n_edges
        if progress <= drift_start or drift_span == 0:
            mix = 0.0 if progress <= drift_start else 1.0
        else:
            mix = min(1.0, (progress - drift_start) / drift_span)
        a, b, c, _d = (1 - mix) * start_p + mix * end_p
        thresholds = np.array([a, a + b, a + b + c])
        src = np.zeros(size, dtype=np.int64)
        dst = np.zeros(size, dtype=np.int64)
        for _ in range(scale):
            quadrant = np.searchsorted(thresholds, rng.random(size))
            src = (src << 1) | (quadrant >> 1)
            dst = (dst << 1) | (quadrant & 1)
        src %= n_nodes
        dst %= n_nodes
        pending = [StreamEdge(s, t, 1.0, 0.0)
                   for s, t in zip(src.tolist(), dst.tolist())]
        yield from _stamp_arrivals(pending, clock_rng, rate, jitter, clock)
        clock = pending[-1].timestamp
        emitted += size


def _stamp_arrivals(edges: List[StreamEdge], rng: np.random.Generator,
                    rate: float, jitter: float,
                    clock: float) -> Iterator[StreamEdge]:
    """Re-stamp a block of elements with jittered arrival times in place."""
    gaps = (1.0 / rate) * rng.uniform(1.0 - jitter, 1.0 + jitter,
                                      size=len(edges))
    timestamps = clock + np.cumsum(gaps)
    for i, edge in enumerate(edges):
        edges[i] = StreamEdge(edge.source, edge.target, edge.weight,
                              float(timestamps[i]))
    return iter(edges)


def dblp_like(n_authors: int = 2000, n_papers: int = 4000,
              productivity_alpha: float = 1.8,
              communities: int = 1,
              crossover: float = 0.05,
              seed: Optional[int] = None) -> GraphStream:
    """Undirected co-authorship stream mimicking DBLP.

    Authors are drawn per paper with Zipf-skewed productivity; every pair of
    co-authors on a paper contributes a weight-1 element.  Repeated
    collaborations accumulate multiplicity exactly as in DBLP, producing a
    Zipf edge-weight distribution with a modest range (paper Fig. 8(a)).
    Labels are strings (``"author_17"``) so the string-hashing path of the
    sketches is exercised, as it would be with real author names.

    :param communities: research communities.  With more than one, each
        paper draws its authors from a single community (except a
        ``crossover`` fraction of cross-community papers), producing the
        block structure community-detection experiments need.
    :param crossover: fraction of papers ignoring community boundaries.
    """
    if n_authors < 4:
        raise ValueError(f"n_authors must be >= 4, got {n_authors}")
    if communities < 1:
        raise ValueError(f"communities must be >= 1, got {communities}")
    if n_authors < 4 * communities:
        raise ValueError(
            f"{communities} communities need >= {4 * communities} authors")
    if not 0 <= crossover <= 1:
        raise ValueError(f"crossover must be in [0, 1], got {crossover}")
    rng = np.random.default_rng(seed)
    # Shifted-Zipf productivity ranks; within each community rank 0 is the
    # most productive member, holding a few percent of author slots, like
    # real DBLP.
    per_community = n_authors // communities
    ranks = _shifted_zipf_choice(rng, per_community, n_papers * 4,
                                 exponent=productivity_alpha,
                                 shift=max(4.0, per_community / 50))

    stream = GraphStream(directed=False)
    cursor = 0
    for paper in range(n_papers):
        n_coauthors = int(rng.integers(2, 5))  # 2..4 authors per paper
        local_ranks = np.unique(ranks[cursor:cursor + n_coauthors])
        cursor += n_coauthors
        if communities == 1:
            authors = [int(r) for r in local_ranks]
        elif rng.random() < crossover:
            # Cross-community paper: each author lands anywhere.
            authors = sorted({
                int(r) * communities + int(rng.integers(0, communities))
                for r in local_ranks})
        else:
            community = int(rng.integers(0, communities))
            authors = [int(r) * communities + community for r in local_ranks]
        names = [f"author_{a}" for a in authors]
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                stream.add(names[i], names[j], 1.0, float(paper))
    return stream


def ipflow_like(n_hosts: int = 1000, n_packets: int = 20000,
                flows_per_packet: float = 1 / 25,
                flow_size_alpha: float = 1.1,
                popularity_alpha: float = 1.2,
                background_fraction: float = 0.3,
                seed: Optional[int] = None) -> GraphStream:
    """Directed packet-trace stream mimicking CAIDA IP flows.

    Traffic has two components, as on a real backbone link:

    - *flows*: a bounded set of (src, dst) host pairs with Zipf-skewed
      packet counts, whose endpoints are themselves Zipf-popular hosts.
      Heavy flows aggregate to per-edge byte counts orders of magnitude
      above the median -- the paper's observed weight range (Fig. 8(b):
      [46, 1.1e8]) and the regime in which heavy-hitter detection is
      near-perfect (Fig. 11).
    - *background*: scans and one-off connections between uniformly random
      host pairs, producing the long tail of light distinct edges that
      dominates edge-query relative error (Fig. 10).

    Each packet carries a log-normal size in [40, 1500] bytes as its edge
    weight.  Labels are dotted-quad strings so the string-label path of
    the sketches is exercised.
    """
    if n_hosts < 2:
        raise ValueError(f"n_hosts must be >= 2, got {n_hosts}")
    if n_packets < 1:
        raise ValueError(f"n_packets must be >= 1, got {n_packets}")
    if not 0 <= background_fraction < 1:
        raise ValueError(
            f"background_fraction must be in [0, 1), got {background_fraction}")
    rng = np.random.default_rng(seed)
    n_flows = max(8, int(n_packets * flows_per_packet))
    src = _shifted_zipf_choice(rng, n_hosts, n_flows,
                               exponent=popularity_alpha,
                               shift=max(2.0, n_hosts / 200))
    dst = _shifted_zipf_choice(rng, n_hosts, n_flows,
                               exponent=popularity_alpha,
                               shift=max(2.0, n_hosts / 200))
    # Avoid self-loops the way real traces do: re-draw collided targets.
    collisions = src == dst
    dst[collisions] = (dst[collisions] + 1) % n_hosts
    # Packets are distributed over flows with a heavy-tailed flow-size
    # law; the busiest flow carries several percent of all packets.
    flow_of_packet = _shifted_zipf_choice(rng, n_flows, n_packets,
                                          exponent=flow_size_alpha,
                                          shift=2.0)
    is_background = rng.random(n_packets) < background_fraction
    bg_src = rng.integers(0, n_hosts, size=n_packets)
    bg_dst = rng.integers(0, n_hosts, size=n_packets)
    bg_dst = np.where(bg_src == bg_dst, (bg_dst + 1) % n_hosts, bg_dst)
    sizes = np.clip(np.exp(rng.normal(5.5, 1.2, size=n_packets)), 40, 1500)

    def ip(host: int) -> str:
        return f"10.{(host >> 16) & 255}.{(host >> 8) & 255}.{host & 255}"

    stream = GraphStream(directed=True)
    for t in range(n_packets):
        if is_background[t]:
            source, target = int(bg_src[t]), int(bg_dst[t])
        else:
            flow = int(flow_of_packet[t])
            source, target = int(src[flow]), int(dst[flow])
        stream.add(ip(source), ip(target), float(sizes[t]), float(t))
    return stream


def twitter_like(n_users: int = 5000, n_links: int = 50000,
                 seed: Optional[int] = None) -> GraphStream:
    """Large power-law undirected link structure for throughput tests.

    The paper used the anonymised Twitter link graph purely for efficiency
    experiments; this generator provides the same role at laptop scale.
    """
    return rmat(n_users, n_links, seed=seed, directed=False)


def barabasi_albert(n_nodes: int, attachments: int = 2,
                    seed: Optional[int] = None) -> GraphStream:
    """Preferential-attachment (Barabási–Albert) undirected stream.

    Nodes arrive one at a time and attach ``attachments`` edges to
    existing nodes chosen proportionally to their current degree -- the
    classic growth model for power-law degree graphs, and a natural
    *stream* (edges appear in attachment order).  Complements
    :func:`rmat`, whose skew comes from recursive quadrants rather than
    growth.
    """
    if attachments < 1:
        raise ValueError(f"attachments must be >= 1, got {attachments}")
    if n_nodes <= attachments:
        raise ValueError(
            f"n_nodes must exceed attachments, got {n_nodes} <= {attachments}")
    rng = np.random.default_rng(seed)
    stream = GraphStream(directed=False)
    # Seed clique over the first (attachments + 1) nodes.
    degree_pool: List[int] = []
    t = 0
    for i in range(attachments + 1):
        for j in range(i + 1, attachments + 1):
            stream.add(i, j, 1.0, float(t))
            degree_pool.extend((i, j))
            t += 1
    for new_node in range(attachments + 1, n_nodes):
        targets: set = set()
        while len(targets) < attachments:
            targets.add(degree_pool[int(rng.integers(0, len(degree_pool)))])
        for target in sorted(targets):
            stream.add(new_node, target, 1.0, float(t))
            degree_pool.extend((new_node, target))
            t += 1
    return stream


def erdos_renyi(n_nodes: int, n_edges: int, seed: Optional[int] = None,
                directed: bool = True) -> GraphStream:
    """Uniform random multigraph stream (no skew); a simple null model."""
    if n_nodes < 2:
        raise ValueError(f"n_nodes must be >= 2, got {n_nodes}")
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n_nodes, size=n_edges)
    dst = rng.integers(0, n_nodes, size=n_edges)
    stream = GraphStream(directed=directed)
    for t in range(n_edges):
        stream.add(int(src[t]), int(dst[t]), 1.0, float(t))
    return stream


def path_stream(labels: Sequence[object], weight: float = 1.0,
                directed: bool = True) -> GraphStream:
    """A simple path ``labels[0] -> labels[1] -> ...`` as a stream."""
    stream = GraphStream(directed=directed)
    for t in range(len(labels) - 1):
        stream.add(labels[t], labels[t + 1], weight, float(t))
    return stream


def star_stream(center: object, leaves: Sequence[object], weight: float = 1.0,
                directed: bool = True) -> GraphStream:
    """A star with edges ``center -> leaf`` for every leaf."""
    stream = GraphStream(directed=directed)
    for t, leaf in enumerate(leaves):
        stream.add(center, leaf, weight, float(t))
    return stream


def clique_stream(labels: Sequence[object], weight: float = 1.0,
                  directed: bool = False) -> GraphStream:
    """A clique over ``labels``; directed cliques get both orientations."""
    stream = GraphStream(directed=directed)
    t = 0
    for i in range(len(labels)):
        for j in range(i + 1, len(labels)):
            stream.add(labels[i], labels[j], weight, float(t))
            t += 1
            if directed:
                stream.add(labels[j], labels[i], weight, float(t))
                t += 1
    return stream


def query_graphs_from_stream(stream: GraphStream, count: int = 20,
                             min_edges: int = 2, max_edges: int = 8,
                             seed: Optional[int] = None) -> List[List[Tuple[object, object]]]:
    """Sample connected query graphs from an existing stream (Exp-4(a)).

    Random-walks the aggregated graph to collect connected edge sets of
    2-8 edges, mixing path, star and general shapes as the paper did.
    """
    rng = np.random.default_rng(seed)
    adjacency = {node: sorted(stream.successors(node), key=repr)
                 for node in stream.nodes}
    nodes = sorted((n for n in adjacency if adjacency[n]), key=repr)
    if not nodes:
        return []
    queries: List[List[Tuple[object, object]]] = []
    attempts = 0
    while len(queries) < count and attempts < count * 50:
        attempts += 1
        size = int(rng.integers(min_edges, max_edges + 1))
        start = nodes[int(rng.integers(0, len(nodes)))]
        edges: List[Tuple[object, object]] = []
        seen = set()
        frontier = [start]
        while frontier and len(edges) < size:
            node = frontier.pop(int(rng.integers(0, len(frontier))))
            succs = adjacency.get(node, [])
            if not succs:
                continue
            nxt = succs[int(rng.integers(0, len(succs)))]
            if (node, nxt) in seen:
                continue
            seen.add((node, nxt))
            edges.append((node, nxt))
            frontier.extend([node, nxt])
        if len(edges) >= min_edges:
            queries.append(edges)
    return queries
