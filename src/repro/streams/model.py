"""Graph-stream data model.

The model mirrors the paper's formulation exactly: a stream
``G = <e1, e2, ..., em>`` of elements ``e = (x, y; t)`` with non-negative
weights, defining a directed or undirected multigraph.  ``|G|`` is the
number of stream elements, not the number of distinct edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.hashing.labels import Label


@dataclass(frozen=True, slots=True)
class StreamEdge:
    """One stream element ``(source, target; timestamp)`` with a weight.

    The default weight is 1 (paper Fig. 1); IP-flow-style streams carry the
    packet size in bytes as the weight.  Weights must be non-negative
    (paper Section 3.1 assumes ``w(e) >= 0``).

    Slotted because ingest constructs one instance per stream element:
    slots shave roughly a third off construction plus attribute access,
    which is measurable at millions of elements per second.
    """

    source: Label
    target: Label
    weight: float = 1.0
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError(f"edge weight must be non-negative, got {self.weight}")

    def reversed(self) -> "StreamEdge":
        """The same element with endpoints swapped (used for undirected ingest)."""
        return StreamEdge(self.target, self.source, self.weight, self.timestamp)


class GraphStream:
    """An in-memory graph stream: an ordered multiset of :class:`StreamEdge`.

    Experiments need the *exact* underlying aggregated graph as ground
    truth, so this class doubles as the exact reference store: it maintains
    aggregated edge weights, node flows and adjacency alongside the raw
    element sequence.  Real deployments would only ever see the elements
    once; the sketches under test consume :meth:`__iter__` in one pass.

    :param directed: whether elements are ordered pairs.  For undirected
        streams, aggregation treats ``(x, y)`` and ``(y, x)`` as the same
        edge (canonicalised by sorting the pair's stable integer keys).
    """

    def __init__(self, directed: bool = True, edges: Optional[Iterable[StreamEdge]] = None):
        self.directed = directed
        # True when weights encode edge *multiplicities* (how many times
        # the edge appeared), as in the paper's GTGraph setup.  Space
        # accounting then measures the stream by total weight, not element
        # count -- see repro.experiments.common.cells_for_ratio.
        self.multiplicity_weights = False
        self._elements: List[StreamEdge] = []
        self._edge_weight: Dict[Tuple[Label, Label], float] = {}
        self._out_flow: Dict[Label, float] = {}
        self._in_flow: Dict[Label, float] = {}
        self._successors: Dict[Label, Set[Label]] = {}
        self._predecessors: Dict[Label, Set[Label]] = {}
        if edges is not None:
            self.extend(edges)

    # -- ingestion ---------------------------------------------------------

    def append(self, edge: StreamEdge) -> None:
        """Append one element to the stream and update the exact aggregates."""
        self._elements.append(edge)
        key = self._canonical(edge.source, edge.target)
        self._edge_weight[key] = self._edge_weight.get(key, 0.0) + edge.weight
        self._out_flow[edge.source] = self._out_flow.get(edge.source, 0.0) + edge.weight
        self._in_flow[edge.target] = self._in_flow.get(edge.target, 0.0) + edge.weight
        if edge.weight > 0:
            # Topology (adjacency, reachability) is defined by edges with
            # positive aggregated weight -- the same notion a sum-aggregated
            # sketch can represent.
            self._successors.setdefault(edge.source, set()).add(edge.target)
            self._predecessors.setdefault(edge.target, set()).add(edge.source)
        if not self.directed and edge.source != edge.target:
            # Mirror flows and adjacency; self-loops count once (their
            # incident weight is the element's weight, not double it).
            self._out_flow[edge.target] = self._out_flow.get(edge.target, 0.0) + edge.weight
            self._in_flow[edge.source] = self._in_flow.get(edge.source, 0.0) + edge.weight
            if edge.weight > 0:
                self._successors.setdefault(edge.target, set()).add(edge.source)
                self._predecessors.setdefault(edge.source, set()).add(edge.target)

    def add(self, source: Label, target: Label, weight: float = 1.0, timestamp: float = 0.0) -> None:
        """Convenience wrapper building the :class:`StreamEdge` in place."""
        self.append(StreamEdge(source, target, weight, timestamp))

    def extend(self, edges: Iterable[StreamEdge]) -> None:
        for edge in edges:
            self.append(edge)

    def _canonical(self, x: Label, y: Label) -> Tuple[Label, Label]:
        if self.directed:
            return (x, y)
        # Canonical order must be stable across label types; repr-sort is
        # adequate and deterministic for the str/int labels we support.
        return (x, y) if repr(x) <= repr(y) else (y, x)

    # -- stream protocol ----------------------------------------------------

    def __iter__(self) -> Iterator[StreamEdge]:
        return iter(self._elements)

    def __len__(self) -> int:
        """``|G|``: the number of stream elements."""
        return len(self._elements)

    def __getitem__(self, i: int) -> StreamEdge:
        return self._elements[i]

    # -- exact (ground-truth) queries ---------------------------------------

    @property
    def nodes(self) -> Set[Label]:
        """All node labels observed so far."""
        seen: Set[Label] = set()
        seen.update(self._out_flow)
        seen.update(self._in_flow)
        return seen

    @property
    def distinct_edges(self) -> Set[Tuple[Label, Label]]:
        """Distinct (canonicalised) edges of the underlying graph."""
        return set(self._edge_weight)

    def edge_weight(self, x: Label, y: Label) -> float:
        """Exact aggregated weight ``f_e(x, y)``; 0 for unseen edges."""
        return self._edge_weight.get(self._canonical(x, y), 0.0)

    def out_flow(self, x: Label) -> float:
        """Exact aggregated out-flow ``f_v(x, ->)`` (directed)."""
        return self._out_flow.get(x, 0.0)

    def in_flow(self, x: Label) -> float:
        """Exact aggregated in-flow ``f_v(x, <-)`` (directed)."""
        return self._in_flow.get(x, 0.0)

    def flow(self, x: Label) -> float:
        """Exact node flow ``f_v(x, -)`` for undirected streams."""
        if self.directed:
            raise ValueError("flow() is for undirected streams; use in_flow/out_flow")
        # For undirected streams in/out flows are maintained symmetrically.
        return self._out_flow.get(x, 0.0)

    def successors(self, x: Label) -> Set[Label]:
        """Nodes reachable from ``x`` by one edge."""
        return self._successors.get(x, set())

    def predecessors(self, x: Label) -> Set[Label]:
        """Nodes with an edge into ``x``."""
        return self._predecessors.get(x, set())

    def reachable(self, source: Label, target: Label) -> bool:
        """Exact reachability ``r(source, target)`` by BFS over adjacency."""
        if source == target:
            return True
        if source not in self._successors:
            return False
        frontier = [source]
        visited = {source}
        while frontier:
            next_frontier: List[Label] = []
            for node in frontier:
                for succ in self._successors.get(node, ()):
                    if succ == target:
                        return True
                    if succ not in visited:
                        visited.add(succ)
                        next_frontier.append(succ)
            frontier = next_frontier
        return False

    def subgraph_weight(self, edges: Iterable[Tuple[Label, Label]]) -> float:
        """Exact aggregate subgraph weight ``f_g(Q)`` for explicit edges.

        Per the paper's semantics (Section 4.4): if any constituent edge is
        absent the whole query graph has no exact match and the answer is 0.
        """
        total = 0.0
        for x, y in edges:
            w = self.edge_weight(x, y)
            if w == 0.0:
                return 0.0
            total += w
        return total

    def top_edges(self, k: int) -> List[Tuple[Tuple[Label, Label], float]]:
        """Exact top-``k`` heaviest edges (ground truth for Exp-1(d))."""
        ranked = sorted(self._edge_weight.items(), key=lambda kv: (-kv[1], repr(kv[0])))
        return ranked[:k]

    def top_nodes(self, k: int, direction: str = "in") -> List[Tuple[Label, float]]:
        """Exact top-``k`` heaviest nodes by flow (ground truth for Exp-2).

        :param direction: ``"in"``, ``"out"`` or ``"both"`` (undirected).
        """
        if direction == "in":
            flows = self._in_flow
        elif direction == "out":
            flows = self._out_flow
        elif direction == "both":
            if self.directed:
                raise ValueError(
                    "direction='both' is for undirected streams; use "
                    "'in' or 'out'")
            flows = self._out_flow  # symmetric for undirected streams
        else:
            raise ValueError(f"direction must be 'in', 'out' or 'both', got {direction!r}")
        ranked = sorted(flows.items(), key=lambda kv: (-kv[1], repr(kv[0])))
        return ranked[:k]

    def total_weight(self) -> float:
        """Sum of all element weights (the ``n`` scale in error bounds)."""
        return sum(e.weight for e in self._elements)
