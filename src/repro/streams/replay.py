"""Stream replay: drive many consumers from one pass over the elements.

Production monitoring rarely maintains a single summary: the same packet
feeds a cumulative sketch, a sliding window, a snapshot ring, a decayed
view and several heavy-hitter monitors.  :class:`MonitoringHub` wires any
number of consumers to one stream and replays it element by element, so
everything observes identical data in identical order -- the composition
layer the examples and integration tests use.

A consumer is anything with an ``observe(edge)`` method *or* an
``update(source, target, weight)`` method (both conventions exist in this
library; the hub adapts automatically).
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, List, Tuple

from repro.obs.instruments import OBS
from repro.streams.model import StreamEdge

Consumer = Callable[[StreamEdge], None]


def _adapt(consumer: object) -> Consumer:
    """Wrap a consumer object into a uniform per-element callable."""
    observe = getattr(consumer, "observe", None)
    if callable(observe):
        try:
            # Monitors take (source, target, weight); windows/rings take
            # the StreamEdge itself.  Distinguish by arity at wrap time.
            import inspect
            parameters = inspect.signature(observe).parameters
        except (TypeError, ValueError):
            parameters = {}
        if len(parameters) >= 2:
            if "timestamp" in parameters:
                return lambda edge: observe(edge.source, edge.target,
                                            edge.weight,
                                            timestamp=edge.timestamp)
            return lambda edge: observe(edge.source, edge.target, edge.weight)
        return lambda edge: observe(edge)
    update = getattr(consumer, "update", None)
    if callable(update):
        return lambda edge: update(edge.source, edge.target, edge.weight)
    raise TypeError(
        f"{type(consumer).__name__} has neither observe() nor update()")


class MonitoringHub:
    """Replay one stream into many summaries/monitors in lock-step."""

    def __init__(self):
        self._consumers: List[Tuple[str, object, Consumer]] = []

    def attach(self, name: str, consumer: object) -> object:
        """Register a consumer under a name; returns the consumer."""
        if any(existing == name for existing, _, _ in self._consumers):
            raise ValueError(f"a consumer named {name!r} is already attached")
        self._consumers.append((name, consumer, _adapt(consumer)))
        return consumer

    def __getitem__(self, name: str) -> object:
        for existing, consumer, _ in self._consumers:
            if existing == name:
                return consumer
        raise KeyError(name)

    def __len__(self) -> int:
        return len(self._consumers)

    @property
    def names(self) -> List[str]:
        return [name for name, _, _ in self._consumers]

    def observe(self, edge: StreamEdge) -> None:
        """Deliver one element to every consumer, in attach order."""
        for _, _, deliver in self._consumers:
            deliver(edge)
        if OBS.enabled:
            OBS.replay_edges.inc()
            OBS.replay_bytes.inc(
                len(str(edge.source)) + len(str(edge.target)) + 16)

    def replay(self, stream: Iterable[StreamEdge]) -> int:
        """Deliver a whole stream; returns the element count."""
        count = 0
        for edge in stream:
            self.observe(edge)
            count += 1
        return count

    def replay_chunked(self, stream: Iterable[StreamEdge],
                       chunk_size: int = 65536) -> int:
        """Replay in fixed-size chunks, using consumers' batch kernels.

        Consumers exposing ``ingest_chunk(edges)`` (e.g.
        :class:`~repro.core.tcm.TCM`) receive each chunk in one vectorized
        call; everything else still gets elements one by one, in order.
        Lock-step across consumers therefore holds at chunk granularity
        rather than element granularity -- every consumer has seen exactly
        the same prefix at each chunk boundary, which is the invariant the
        composition layer actually relies on.  Final states are identical
        to :meth:`replay` for order-insensitive consumers (all summaries).
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        count = 0
        iterator = iter(stream)
        while True:
            chunk = list(itertools.islice(iterator, chunk_size))
            if not chunk:
                return count
            count += len(chunk)
            for _, consumer, deliver in self._consumers:
                ingest_chunk = getattr(consumer, "ingest_chunk", None)
                if callable(ingest_chunk):
                    ingest_chunk(chunk)
                else:
                    for edge in chunk:
                        deliver(edge)
            if OBS.enabled:
                OBS.replay_edges.inc(len(chunk))
                OBS.replay_bytes.inc(sum(
                    len(str(e.source)) + len(str(e.target)) + 16
                    for e in chunk))
