"""Descriptive statistics of graph streams.

The quantities the paper's Section 6 uses to characterize its datasets
(Fig. 8's weight distributions, degree skew, weight ranges), packaged so
workload properties are inspectable and assertable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.streams.model import GraphStream


@dataclass(frozen=True)
class StreamSummary:
    """A one-struct overview of a stream's shape."""

    elements: int
    distinct_edges: int
    nodes: int
    total_weight: float
    min_edge_weight: float
    max_edge_weight: float
    mean_edge_weight: float
    weight_gini: float
    degree_gini: float

    @property
    def weight_range_orders(self) -> float:
        """log10 of max/min aggregated edge weight (Fig. 8's x-range)."""
        if self.min_edge_weight <= 0:
            return math.inf
        return math.log10(self.max_edge_weight / self.min_edge_weight)


def gini(values: List[float]) -> float:
    """Gini coefficient in [0, 1); 0 = uniform, ->1 = concentrated.

    Standard mean-absolute-difference formulation over non-negative
    values.
    """
    if not values:
        raise ValueError("gini of an empty collection is undefined")
    if any(v < 0 for v in values):
        raise ValueError("gini requires non-negative values")
    total = sum(values)
    if total == 0:
        return 0.0
    ordered = sorted(values)
    n = len(ordered)
    cumulative = 0.0
    weighted = 0.0
    for i, value in enumerate(ordered, start=1):
        cumulative += value
        weighted += i * value
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n


def summarize(stream: GraphStream) -> StreamSummary:
    """Compute the :class:`StreamSummary` of a stream."""
    weights = [stream.edge_weight(*e) for e in stream.distinct_edges]
    if not weights:
        raise ValueError("cannot summarize an empty stream")
    if stream.directed:
        degrees = [stream.out_flow(n) + stream.in_flow(n)
                   for n in stream.nodes]
    else:
        degrees = [stream.flow(n) for n in stream.nodes]
    return StreamSummary(
        elements=len(stream),
        distinct_edges=len(weights),
        nodes=len(stream.nodes),
        total_weight=stream.total_weight(),
        min_edge_weight=min(weights),
        max_edge_weight=max(weights),
        mean_edge_weight=sum(weights) / len(weights),
        weight_gini=gini(weights),
        degree_gini=gini(degrees),
    )


def weight_histogram(stream: GraphStream, buckets: int = 10
                     ) -> List[Tuple[float, float, int]]:
    """Equal-count histogram of aggregated edge weights, ascending.

    Returns ``[(min_weight, max_weight, count), ...]`` -- the data behind
    the paper's Fig. 8.
    """
    if buckets < 1:
        raise ValueError(f"buckets must be >= 1, got {buckets}")
    weights = sorted(stream.edge_weight(*e) for e in stream.distinct_edges)
    if not weights:
        return []
    bounds = [round(i * len(weights) / buckets) for i in range(buckets + 1)]
    histogram = []
    for b in range(buckets):
        chunk = weights[bounds[b]:bounds[b + 1]]
        if chunk:
            histogram.append((chunk[0], chunk[-1], len(chunk)))
    return histogram


def degree_distribution(stream: GraphStream) -> Dict[int, int]:
    """Distinct-neighbour degree -> node count (undirected closure)."""
    counts: Dict[int, int] = {}
    for node in stream.nodes:
        degree = len(stream.successors(node) | stream.predecessors(node))
        counts[degree] = counts.get(degree, 0) + 1
    return counts
