"""Sliding time-windows over graph streams.

The paper notes (Section 5.1.1, "Deletions") that expiring an element out of
a time window is a constant-time decrement of the corresponding matrix cell.
:class:`SlidingWindow` packages that pattern: it forwards every arriving
element to a summary as an insertion and, as the watermark advances, replays
expired elements as deletions, so the summary always reflects exactly the
last ``horizon`` time units of the stream.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Protocol, runtime_checkable

from repro.streams.model import StreamEdge


@runtime_checkable
class SupportsUpdateRemove(Protocol):
    """Anything that can absorb insertions and deletions of stream edges.

    :class:`repro.core.tcm.TCM`, :class:`repro.core.graph_sketch.GraphSketch`
    and :class:`repro.baselines.countmin.CountMinSketch` all satisfy this.
    """

    def update(self, source, target, weight: float = ...) -> None: ...

    def remove(self, source, target, weight: float = ...) -> None: ...


class SlidingWindow:
    """Maintain a summary over the trailing ``horizon`` of stream time.

    Elements must arrive in non-decreasing timestamp order (the stream
    model's natural order); out-of-order arrivals raise ``ValueError``
    rather than silently corrupting the window.

    :param summary: the sketch (or any insert/delete-capable structure)
        kept in sync with the window contents.
    :param horizon: window length in stream time units.  An element with
        timestamp ``t`` expires once an element with timestamp
        ``> t + horizon`` arrives (or :meth:`advance_to` passes it).
    """

    def __init__(self, summary: SupportsUpdateRemove, horizon: float):
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        self.summary = summary
        self.horizon = horizon
        self._buffer: Deque[StreamEdge] = deque()
        self._watermark = float("-inf")

    def __len__(self) -> int:
        """Number of live (non-expired) elements in the window."""
        return len(self._buffer)

    @property
    def watermark(self) -> float:
        """The latest timestamp observed (or advanced to)."""
        return self._watermark

    def observe(self, edge: StreamEdge) -> None:
        """Ingest one element: insert into the summary, expire the old."""
        if edge.timestamp < self._watermark:
            raise ValueError(
                f"out-of-order element at t={edge.timestamp} "
                f"(watermark is {self._watermark})")
        self.summary.update(edge.source, edge.target, edge.weight)
        self._buffer.append(edge)
        self.advance_to(edge.timestamp)

    def advance_to(self, timestamp: float) -> int:
        """Move the watermark forward, expiring elements; returns how many.

        Expiry is the constant-per-element decrement described in the
        paper: each expired edge is removed from the summary with exactly
        the weight it was inserted with.
        """
        if timestamp < self._watermark:
            raise ValueError(
                f"cannot move watermark backwards to {timestamp} "
                f"(currently {self._watermark})")
        self._watermark = timestamp
        expired = 0
        cutoff = timestamp - self.horizon
        while self._buffer and self._buffer[0].timestamp < cutoff:
            old = self._buffer.popleft()
            self.summary.remove(old.source, old.target, old.weight)
            expired += 1
        return expired
