"""Sliding time-windows over graph streams.

The paper notes (Section 5.1.1, "Deletions") that expiring an element out of
a time window is a constant-time decrement of the corresponding matrix cell.
:class:`SlidingWindow` packages that pattern: it forwards every arriving
element to a summary as an insertion and, as the watermark advances, replays
expired elements as deletions, so the summary always reflects exactly the
last ``horizon`` time units of the stream.

The window is the third vectorized path of the system (after the chunked
ingest engine and the batched query engine): live elements are held in a
**columnar ring buffer** -- flat numpy arrays of interned label keys,
weights and timestamps -- and expiry drains a whole batch with one
:meth:`~repro.core.tcm.TCM.remove_many` scatter per advance instead of one
Python-level ``remove`` call per element.  Summaries that only implement
the scalar ``update``/``remove`` protocol (:class:`SupportsUpdateRemove`)
still work through a per-element fallback that stores the original labels.
Results are bit-identical to the per-element loop for the linear
aggregations (sum/count) -- see ``tests/test_stream_window.py`` and
docs/PERFORMANCE.md ("Window path") for the equivalence argument and the
measured speedup (``BENCH_window_throughput.json``).
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, Protocol, Sequence, Tuple, \
    runtime_checkable

import numpy as np

from repro.hashing.labels import label_keys
from repro.obs.instruments import OBS
from repro.streams.model import StreamEdge

#: Elements pulled per :meth:`SlidingWindow.consume` batch and deleted per
#: :meth:`SlidingWindow.advance_to` expiry scatter.  Matches the ingest
#: engine's chunk size: big enough to amortize numpy call overheads, small
#: enough that the in-flight columns stay a few MB.
DEFAULT_WINDOW_CHUNK = 65536


@runtime_checkable
class SupportsUpdateRemove(Protocol):
    """Anything that can absorb insertions and deletions of stream edges.

    :class:`repro.core.tcm.TCM`, :class:`repro.core.graph_sketch.GraphSketch`
    and :class:`repro.baselines.countmin.CountMinSketch` all satisfy this.
    Summaries that additionally provide the batched ``ingest_columns`` /
    ``remove_many`` pair (TCM does) get the vectorized window fast path.
    """

    def update(self, source, target, weight: float = ...) -> None: ...

    def remove(self, source, target, weight: float = ...) -> None: ...


class _ColumnarBuffer:
    """Growable columnar FIFO of (source, target, weight, timestamp).

    A flat-array deque: appends land at the tail with amortized doubling,
    expiry pops a prefix by advancing the head index, and the live region
    is compacted to the front -- one bulk copy -- whenever the dead prefix
    outgrows the live data.  Timestamps are non-decreasing by the window's
    ordering contract, so "how many elements expire" is one
    ``np.searchsorted``.

    In batched mode the endpoint columns are interned uint64 label keys
    (the form :meth:`TCM.remove_many` eats directly, skipping label
    re-conversion at expiry); in scalar-fallback mode the original label
    objects are kept instead, for summaries that only speak per-element
    ``remove``.
    """

    __slots__ = ("keep_labels", "_capacity", "_head", "_tail",
                 "source_keys", "target_keys", "weights", "timestamps",
                 "source_labels", "target_labels")

    def __init__(self, keep_labels: bool, capacity: int = 1024):
        self.keep_labels = keep_labels
        self._capacity = max(1, capacity)
        self._head = 0
        self._tail = 0
        if keep_labels:
            self.source_keys = None
            self.target_keys = None
            self.source_labels: List = []
            self.target_labels: List = []
        else:
            self.source_keys = np.empty(self._capacity, dtype=np.uint64)
            self.target_keys = np.empty(self._capacity, dtype=np.uint64)
            self.source_labels = None
            self.target_labels = None
        self.weights = np.empty(self._capacity, dtype=np.float64)
        self.timestamps = np.empty(self._capacity, dtype=np.float64)

    def __len__(self) -> int:
        return self._tail - self._head

    @property
    def oldest_timestamp(self) -> Optional[float]:
        if self._head == self._tail:
            return None
        return float(self.timestamps[self._head])

    def _array_columns(self) -> Tuple[np.ndarray, ...]:
        if self.keep_labels:
            return (self.weights, self.timestamps)
        return (self.source_keys, self.target_keys,
                self.weights, self.timestamps)

    def _ensure(self, extra: int) -> None:
        """Make room for ``extra`` appended elements (compact or grow).

        Called only from :meth:`append`, never between a :meth:`pop` and
        the caller's use of the popped views -- popped slices stay valid
        because compaction happens lazily at the next append.
        """
        live = self._tail - self._head
        if self._tail + extra <= self._capacity:
            return
        if live + extra <= self._capacity and self._head > live:
            # Enough total room: slide the live region to the front.
            for column in self._array_columns():
                column[:live] = column[self._head:self._tail].copy()
        else:
            new_capacity = self._capacity
            while live + extra > new_capacity:
                new_capacity *= 2
            for name in ("source_keys", "target_keys", "weights",
                         "timestamps"):
                column = getattr(self, name)
                if column is None:
                    continue
                grown = np.empty(new_capacity, dtype=column.dtype)
                grown[:live] = column[self._head:self._tail]
                setattr(self, name, grown)
            self._capacity = new_capacity
        if self.keep_labels and self._head:
            del self.source_labels[:self._head]
            del self.target_labels[:self._head]
        self._head, self._tail = 0, live

    def append(self, weights: np.ndarray, timestamps: np.ndarray,
               source_keys: Optional[np.ndarray] = None,
               target_keys: Optional[np.ndarray] = None,
               source_labels: Optional[Sequence] = None,
               target_labels: Optional[Sequence] = None) -> None:
        n = len(weights)
        if n == 0:
            return
        self._ensure(n)
        lo, hi = self._tail, self._tail + n
        self.weights[lo:hi] = weights
        self.timestamps[lo:hi] = timestamps
        if self.keep_labels:
            self.source_labels.extend(source_labels)
            self.target_labels.extend(target_labels)
        else:
            self.source_keys[lo:hi] = source_keys
            self.target_keys[lo:hi] = target_keys
        self._tail = hi

    def count_expired(self, cutoff: float) -> int:
        """Elements at the front with ``timestamp < cutoff`` (strict)."""
        return int(np.searchsorted(self.timestamps[self._head:self._tail],
                                   cutoff, side="left"))

    def pop(self, n: int):
        """Drop the ``n`` oldest elements, returning their columns.

        Batched mode returns ``(source_keys, target_keys, weights)``
        array views; scalar mode returns ``(source_labels, target_labels,
        weights)``.  Views remain valid until the next :meth:`append`.
        """
        lo, hi = self._head, self._head + n
        weights = self.weights[lo:hi]
        if self.keep_labels:
            columns = (self.source_labels[lo:hi],
                       self.target_labels[lo:hi], weights)
        else:
            columns = (self.source_keys[lo:hi],
                       self.target_keys[lo:hi], weights)
        self._head = hi
        return columns


class SlidingWindow:
    """Maintain a summary over the trailing ``horizon`` of stream time.

    Elements must arrive in non-decreasing timestamp order (the stream
    model's natural order); out-of-order arrivals raise ``ValueError``
    rather than silently corrupting the window.

    When the summary exposes the batched maintenance pair
    (``ingest_columns`` + ``remove_many``, as :class:`~repro.core.tcm.TCM`
    does), insertion and expiry run through the vectorized kernels over a
    columnar key buffer; any other insert/delete-capable structure falls
    back to per-element calls transparently.  Either way the maintained
    summary is identical to the per-element reference loop.

    :param summary: the sketch (or any insert/delete-capable structure)
        kept in sync with the window contents.
    :param horizon: window length in stream time units.  An element with
        timestamp ``t`` expires once an element with timestamp
        ``> t + horizon`` arrives (or :meth:`advance_to` passes it).
    :param expiry_chunk: maximum elements deleted per ``remove_many``
        scatter (bounds temp-array size on huge expiry bursts).
    """

    def __init__(self, summary: SupportsUpdateRemove, horizon: float,
                 *, expiry_chunk: int = DEFAULT_WINDOW_CHUNK):
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if expiry_chunk < 1:
            raise ValueError(
                f"expiry_chunk must be >= 1, got {expiry_chunk}")
        self.summary = summary
        self.horizon = horizon
        self.expiry_chunk = expiry_chunk
        self._batched = (hasattr(summary, "remove_many")
                         and hasattr(summary, "ingest_columns"))
        self._buffer = _ColumnarBuffer(keep_labels=not self._batched)
        self._watermark = float("-inf")

    def __len__(self) -> int:
        """Number of live (non-expired) elements in the window."""
        return len(self._buffer)

    @property
    def watermark(self) -> float:
        """The latest timestamp observed (or advanced to)."""
        return self._watermark

    @property
    def is_batched(self) -> bool:
        """Whether maintenance runs through the vectorized kernels."""
        return self._batched

    @property
    def oldest_timestamp(self) -> Optional[float]:
        """Timestamp of the oldest live element (None when empty)."""
        return self._buffer.oldest_timestamp

    def observe(self, edge: StreamEdge) -> None:
        """Ingest one element: insert into the summary, expire the old."""
        self.observe_many((edge,))

    def observe_many(self, edges: Sequence[StreamEdge]) -> int:
        """Ingest a batch of elements through the vectorized path.

        One label-interning pass, one ``ingest_columns`` insertion, one
        buffer append and one watermark advance (hence at most
        ``ceil(expired / expiry_chunk)`` ``remove_many`` scatters) for
        the whole batch.  The final summary and buffer state are
        identical to observing the elements one at a time.  Returns the
        number of elements ingested.
        """
        if not isinstance(edges, (list, tuple)):
            edges = list(edges)
        n = len(edges)
        if n == 0:
            return 0
        timestamps = np.fromiter((e.timestamp for e in edges),
                                 dtype=np.float64, count=n)
        previous = np.empty(n, dtype=np.float64)
        previous[0] = self._watermark
        previous[1:] = timestamps[:-1]
        disorder = timestamps < previous
        if disorder.any():
            i = int(np.argmax(disorder))
            raise ValueError(
                f"out-of-order element at t={timestamps[i]} "
                f"(watermark is {previous[i]})")
        weights = np.fromiter((e.weight for e in edges),
                              dtype=np.float64, count=n)
        sources = [e.source for e in edges]
        targets = [e.target for e in edges]
        if self._batched:
            self.summary.ingest_columns(sources, targets, weights)
            self._buffer.append(weights, timestamps,
                                source_keys=label_keys(sources),
                                target_keys=label_keys(targets))
        else:
            for edge in edges:
                self.summary.update(edge.source, edge.target, edge.weight)
            self._buffer.append(weights, timestamps,
                                source_labels=sources,
                                target_labels=targets)
        if OBS.enabled:
            OBS.window_observed.inc(n)
        self.advance_to(float(timestamps[-1]))
        return n

    def consume(self, stream: Iterable[StreamEdge], *,
                chunk_size: int = DEFAULT_WINDOW_CHUNK) -> int:
        """Drive a whole (lazy) stream through the window in chunks.

        The windowed counterpart of :meth:`TCM.ingest`: constant memory
        for any stream length, one vectorized insert + expiry round per
        ``chunk_size`` elements.  Returns the number of elements.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        count = 0
        iterator = iter(stream)
        while True:
            chunk = list(itertools.islice(iterator, chunk_size))
            if not chunk:
                break
            count += self.observe_many(chunk)
        return count

    def advance_to(self, timestamp: float) -> int:
        """Move the watermark forward, expiring elements; returns how many.

        Expiry is the constant-per-element decrement described in the
        paper, applied a batch at a time: the expired prefix of the
        columnar buffer (one ``searchsorted``) is deleted with one
        ``remove_many`` scatter per ``expiry_chunk`` elements, each edge
        removed with exactly the weight it was inserted with.
        """
        if timestamp < self._watermark:
            raise ValueError(
                f"cannot move watermark backwards to {timestamp} "
                f"(currently {self._watermark})")
        self._watermark = timestamp
        cutoff = timestamp - self.horizon
        expired = self._buffer.count_expired(cutoff)
        remaining = expired
        while remaining:
            batch = min(remaining, self.expiry_chunk)
            col_a, col_b, weights = self._buffer.pop(batch)
            if self._batched:
                self.summary.remove_many(col_a, col_b, weights)
            else:
                for source, target, weight in zip(col_a, col_b,
                                                  weights.tolist()):
                    self.summary.remove(source, target, weight)
            remaining -= batch
        if OBS.enabled:
            OBS.window_live_elements.set(len(self._buffer))
            oldest = self._buffer.oldest_timestamp
            OBS.window_watermark_lag.set(
                self._watermark - oldest if oldest is not None else 0.0)
            if expired:
                OBS.window_expired.inc(expired)
                OBS.window_expired_per_advance.observe(expired)
        return expired
