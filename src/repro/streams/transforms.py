"""Stream transformations.

Composable, lazily-evaluated operations over element iterables, for
preparing workloads and wiring pipelines: filtering, weight mapping,
sampling, time manipulation, interleaved merging and fixed-size batching.
Each returns a generator (or a new :class:`GraphStream` via
:func:`materialize`) and leaves its input untouched.
"""

from __future__ import annotations

import heapq
import random
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from repro.streams.model import GraphStream, StreamEdge

EdgePredicate = Callable[[StreamEdge], bool]


def filter_edges(stream: Iterable[StreamEdge],
                 predicate: EdgePredicate) -> Iterator[StreamEdge]:
    """Keep only elements satisfying ``predicate``."""
    return (edge for edge in stream if predicate(edge))


def map_weights(stream: Iterable[StreamEdge],
                fn: Callable[[float], float]) -> Iterator[StreamEdge]:
    """Apply ``fn`` to every element's weight (e.g. bytes -> packets)."""
    for edge in stream:
        yield StreamEdge(edge.source, edge.target, fn(edge.weight),
                         edge.timestamp)


def relabel(stream: Iterable[StreamEdge],
            fn: Callable[[object], object]) -> Iterator[StreamEdge]:
    """Apply ``fn`` to every node label (e.g. IP -> /24 prefix)."""
    for edge in stream:
        yield StreamEdge(fn(edge.source), fn(edge.target), edge.weight,
                         edge.timestamp)


def sample_edges(stream: Iterable[StreamEdge], rate: float,
                 seed: Optional[int] = 0) -> Iterator[StreamEdge]:
    """Bernoulli-sample elements at ``rate``."""
    if not 0 < rate <= 1:
        raise ValueError(f"rate must be in (0, 1], got {rate}")
    rng = random.Random(seed)
    return (edge for edge in stream if rng.random() < rate)


def time_slice(stream: Iterable[StreamEdge], start: float,
               end: float) -> Iterator[StreamEdge]:
    """Elements with ``start <= timestamp < end``."""
    if end <= start:
        raise ValueError("end must be after start")
    return (edge for edge in stream if start <= edge.timestamp < end)


def shift_time(stream: Iterable[StreamEdge],
               offset: float) -> Iterator[StreamEdge]:
    """Add ``offset`` to every timestamp (aligning shards for merging)."""
    for edge in stream:
        yield StreamEdge(edge.source, edge.target, edge.weight,
                         edge.timestamp + offset)


def merge_streams(*streams: Iterable[StreamEdge]) -> Iterator[StreamEdge]:
    """Merge timestamp-ordered streams into one timestamp-ordered stream.

    Inputs must individually be in non-decreasing timestamp order (the
    stream model's natural order); the output then is too.
    """
    return heapq.merge(*streams, key=lambda edge: edge.timestamp)


def batches(stream: Iterable[StreamEdge],
            size: int) -> Iterator[List[StreamEdge]]:
    """Fixed-size element batches (the last one may be short)."""
    if size < 1:
        raise ValueError(f"batch size must be >= 1, got {size}")
    batch: List[StreamEdge] = []
    for edge in stream:
        batch.append(edge)
        if len(batch) == size:
            yield batch
            batch = []
    if batch:
        yield batch


def shard(stream: Sequence[StreamEdge], n_shards: int,
          by: str = "round_robin") -> List[List[StreamEdge]]:
    """Split a stream into ``n_shards`` for distributed ingest.

    :param by: ``"round_robin"`` (element index), ``"source"`` (all
        elements with the same source land on the same shard -- the
        partitioning a per-source collector array produces) or
        ``"time"`` (contiguous time ranges).
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    shards: List[List[StreamEdge]] = [[] for _ in range(n_shards)]
    if by == "round_robin":
        for i, edge in enumerate(stream):
            shards[i % n_shards].append(edge)
    elif by == "source":
        from repro.hashing.labels import label_to_int
        for edge in stream:
            shards[label_to_int(edge.source) % n_shards].append(edge)
    elif by == "time":
        n = len(stream)
        bounds = [round(i * n / n_shards) for i in range(n_shards + 1)]
        for i in range(n_shards):
            shards[i] = list(stream[bounds[i]:bounds[i + 1]])
    else:
        raise ValueError(f"unknown sharding strategy {by!r}")
    return shards


def materialize(edges: Iterable[StreamEdge],
                directed: bool = True) -> GraphStream:
    """Collect a transformed element iterable into a GraphStream."""
    return GraphStream(directed=directed, edges=edges)
