"""Parameter sweeps: the (d x ratio) accuracy grid.

Figs. 7 and 9 each fix one axis of the (space, ensemble size) trade-off;
this driver sweeps both at once and reports the full grid, which is how a
deployment actually gets sized (pick the cheapest cell meeting the error
budget).  Beyond the paper's figures, but built entirely from their
machinery.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.experiments import datasets
from repro.experiments.common import (
    DEFAULT_SEED,
    build_edge_cm,
    build_tcm,
    edge_query_are,
    edge_workload,
)

GridRow = Tuple  # (ratio_label, are@d1, are@d2, ...)


def accuracy_grid(name: str, scale: str = "small",
                  ratios: Optional[Sequence[float]] = None,
                  d_values: Sequence[int] = (1, 3, 5, 7, 9),
                  summary: str = "tcm",
                  seed: int = DEFAULT_SEED) -> List[GridRow]:
    """Edge-query ARE over the (ratio x d) grid.

    :param summary: ``"tcm"`` or ``"countmin"``.
    :returns: one row per ratio: ``(label, are@d..., )`` with d ascending.
    """
    if summary not in ("tcm", "countmin"):
        raise ValueError(f"summary must be 'tcm' or 'countmin', got {summary!r}")
    stream = datasets.by_name(name, scale)
    ratios = ratios if ratios is not None else datasets.DEFAULT_RATIOS[name]
    workload = edge_workload(stream, limit=3000)
    rows: List[GridRow] = []
    for ratio in ratios:
        row: List = [f"1/{round(1 / ratio)}"]
        for d in d_values:
            if summary == "tcm":
                sketch = build_tcm(stream, ratio, d, seed=seed)
            else:
                sketch = build_edge_cm(stream, ratio, d, seed=seed)
            row.append(edge_query_are(stream, sketch.edge_weight, workload))
        rows.append(tuple(row))
    return rows


def cheapest_configuration(name: str, target_are: float,
                           scale: str = "small",
                           ratios: Optional[Sequence[float]] = None,
                           d_values: Sequence[int] = (1, 3, 5, 7, 9),
                           seed: int = DEFAULT_SEED
                           ) -> Optional[Tuple[float, int, float, int]]:
    """The smallest-space (ratio, d) meeting an ARE budget, or None.

    Returns ``(ratio, d, achieved_are, total_cells)`` with the minimum
    ``d * cells_per_sketch`` among grid points whose ARE <= target.
    """
    from repro.experiments.common import cells_for_ratio

    stream = datasets.by_name(name, scale)
    ratios = ratios if ratios is not None else datasets.DEFAULT_RATIOS[name]
    workload = edge_workload(stream, limit=3000)
    best: Optional[Tuple[float, int, float, int]] = None
    for ratio in ratios:
        cells = cells_for_ratio(stream, ratio)
        for d in d_values:
            sketch = build_tcm(stream, ratio, d, seed=seed)
            are = edge_query_are(stream, sketch.edge_weight, workload)
            if are > target_are:
                continue
            total = d * cells
            if best is None or total < best[3]:
                best = (ratio, d, are, total)
    return best
