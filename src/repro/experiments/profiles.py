"""Workload characterization: one fingerprint table per dataset.

The paper characterizes its datasets by size and weight distribution
(Section 6.1.1 and Fig. 8); this driver produces the complete fingerprint
used throughout EXPERIMENTS.md -- sizes, weight range and skew, degree
skew, distinct-edge estimate (bottom-k), self-join size (AMS) and the
triad closure ratio -- so every accuracy discussion can point at measured
workload properties rather than assumptions.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.analytics.motifs import triad_census
from repro.analytics.views import StreamView
from repro.baselines.ams import EdgeF2Sketch
from repro.baselines.bottomk import DistinctEdgeCounter
from repro.experiments import datasets
from repro.streams.stats import summarize


def dataset_profile(name: str, scale: str = "tiny",
                    seed: int = 7) -> Tuple:
    """One fingerprint row for a dataset.

    Returns ``(name, elements, nodes, distinct_edges, bottomk_estimate,
    weight_orders, weight_gini, degree_gini, f2_ratio, closure)`` where
    ``f2_ratio`` is the AMS self-join size divided by the uniform
    baseline (1 = no repeat skew) and ``closure`` the triad closure
    ratio.
    """
    stream = datasets.by_name(name, scale)
    report = summarize(stream)

    distinct_counter = DistinctEdgeCounter(k=256, seed=seed,
                                           directed=stream.directed)
    distinct_counter.ingest(stream)

    f2 = EdgeF2Sketch(5, 32, seed=seed, directed=stream.directed)
    f2.ingest(stream)
    # Uniform baseline: every distinct edge with the mean weight.
    uniform_f2 = report.distinct_edges * report.mean_edge_weight ** 2
    f2_ratio = f2.self_join_size() / uniform_f2 if uniform_f2 else 0.0

    census = triad_census(StreamView(stream))

    return (name, report.elements, report.nodes, report.distinct_edges,
            round(distinct_counter.distinct_edges()),
            report.weight_range_orders, report.weight_gini,
            report.degree_gini, f2_ratio, census.closure_ratio)


def profile_table(names: Sequence[str] = ("dblp", "ipflow", "gtgraph"),
                  scale: str = "tiny", seed: int = 7) -> List[Tuple]:
    """Fingerprint rows for several datasets."""
    return [dataset_profile(name, scale, seed) for name in names]


PROFILE_HEADERS = ("dataset", "elements", "nodes", "distinct edges",
                   "bottom-k est.", "weight orders", "weight gini",
                   "degree gini", "F2 ratio", "triad closure")
