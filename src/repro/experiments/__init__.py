"""Experiment harness: one driver per table/figure of the paper.

Every driver is a pure function: it takes streams and parameters and
returns rows (lists of tuples).  Printing is separated into
:mod:`repro.experiments.report`, and ``python -m repro.experiments``
provides a CLI that regenerates any artifact by id (``fig7`` ...
``table5``, ``ndcg``, ``qtime``).

The per-experiment index mapping each id to its paper artifact lives in
DESIGN.md; measured-versus-paper results are recorded in EXPERIMENTS.md.
"""

from repro.experiments import datasets
from repro.experiments.report import format_table

__all__ = ["datasets", "format_table"]
