"""Exp-5: efficiency -- construction throughput and query time
(paper Fig. 17 and Appendix C.4).

Absolute times are not comparable to the paper's C++ testbed; the
reproduced *shapes* are:

- Fig. 17: edge-CountMin pays a per-element string-concatenation cost
  that TCM avoids (TCM hashes the two labels separately); total build
  time grows linearly with d for both.
- Appendix C.4: query time on the sketch is orders of magnitude below a
  scan of the raw adjacency list and still far below a hash-indexed
  adjacency list.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

from repro.baselines.adjacency import AdjacencyListGraph, HashedAdjacencyGraph
from repro.baselines.countmin import EdgeCountMin, concat_edge_key
from repro.core.tcm import TCM
from repro.experiments import datasets
from repro.experiments.common import (
    DEFAULT_SEED,
    build_tcm,
    cells_for_ratio,
    edge_workload,
)


def build_time_breakdown(name: str, scale: str = "small",
                         ratio: Optional[float] = None,
                         d_values: Sequence[int] = (1, 3, 5, 7, 9),
                         seed: int = DEFAULT_SEED) -> List[Tuple]:
    """Fig. 17: construction time, split into string-op and hash/update.

    Rows ``(d, cm_string, cm_hash, tcm_string, tcm_hash)`` in seconds.
    ``cm_string`` is the concatenation cost edge-CountMin pays on every
    element (measured by a dedicated pre-pass building the concatenated
    keys); ``tcm_string`` is identically zero since TCM never
    concatenates.  Expected shape: cm_string > 0 and flat in d, both hash
    costs growing linearly with d.
    """
    stream = datasets.by_name(name, scale)
    ratio = ratio if ratio is not None else datasets.FIXED_RATIO[name]
    cells = cells_for_ratio(stream, ratio)
    elements = [(e.source, e.target, e.weight) for e in stream]

    rows = []
    for d in d_values:
        # CountMin: string concatenation phase (per element) ...
        start = time.perf_counter()
        keys = [concat_edge_key(s, t) for s, t, _ in elements]
        cm_string = time.perf_counter() - start
        # ... then hashing + update phase on the concatenated keys.
        cm = EdgeCountMin(d, cells, seed=seed, directed=stream.directed)
        start = time.perf_counter()
        for key, (_, _, w) in zip(keys, elements):
            cm._cm.update(key, w)
        cm_hash = time.perf_counter() - start

        # TCM: no string phase; hash both labels and update the matrices.
        tcm = TCM.from_space(cells, d, seed=seed, directed=stream.directed)
        start = time.perf_counter()
        for s, t, w in elements:
            tcm.update(s, t, w)
        tcm_hash = time.perf_counter() - start

        rows.append((d, cm_string, cm_hash, 0.0, tcm_hash))
    return rows


def ingest_throughput(name: str = "twitter", scale: str = "small",
                      ratio: Optional[float] = None, d: int = 4,
                      seed: int = DEFAULT_SEED) -> Tuple[float, float]:
    """Elements/second for scalar vs vectorized TCM ingest.

    Not a paper figure, but documents the numpy bulk path that makes the
    Python reproduction usable at the paper's stream sizes.
    """
    stream = datasets.by_name(name, scale)
    ratio = ratio if ratio is not None else datasets.FIXED_RATIO[name]
    cells = cells_for_ratio(stream, ratio)

    tcm = TCM.from_space(cells, d, seed=seed, directed=stream.directed)
    start = time.perf_counter()
    for edge in stream:
        tcm.update(edge.source, edge.target, edge.weight)
    scalar_rate = len(stream) / (time.perf_counter() - start)

    tcm2 = TCM.from_space(cells, d, seed=seed, directed=stream.directed)
    start = time.perf_counter()
    tcm2.ingest(stream)
    vector_rate = len(stream) / (time.perf_counter() - start)
    return scalar_rate, vector_rate


def query_time_table(name: str = "gtgraph", scale: str = "small",
                     ratio: Optional[float] = None, d: int = 4,
                     query_counts: Sequence[int] = (100, 1000, 10000),
                     seed: int = DEFAULT_SEED) -> List[Tuple]:
    """Appendix C.4: edge-query time on sketch vs adjacency stores.

    Rows ``(n_queries, t_tcm, t_adjacency_list, t_hashed_list)`` in
    seconds.  The workload mirrors the paper: edges stratified by weight
    decile.  The plain adjacency list's linear node lookup is capped to
    the smallest query count (it is three orders of magnitude slower,
    exactly the paper's point) and extrapolated linearly for the rest.
    """
    stream = datasets.by_name(name, scale)
    ratio = ratio if ratio is not None else datasets.FIXED_RATIO[name]
    tcm = build_tcm(stream, ratio, d, seed=seed)
    hashed = HashedAdjacencyGraph(directed=stream.directed)
    hashed.ingest(stream)
    scan = AdjacencyListGraph(directed=stream.directed)
    scan.ingest(stream)

    # Weight-stratified workload (paper: 1/10 of edges from each decile).
    ranked = sorted(stream.distinct_edges,
                    key=lambda e: (stream.edge_weight(*e), repr(e)))
    max_queries = max(query_counts)
    step = max(1, len(ranked) // max_queries)
    pool = (ranked[::step] * (max_queries // max(1, len(ranked[::step])) + 1))
    workload = pool[:max_queries]

    scan_budget = min(query_counts)
    rows = []
    for count in query_counts:
        queries = workload[:count]
        start = time.perf_counter()
        tcm.edge_weights(queries)
        t_tcm = time.perf_counter() - start

        start = time.perf_counter()
        for x, y in queries[:scan_budget]:
            scan.edge_weight(x, y)
        t_scan = (time.perf_counter() - start) * (count / scan_budget)

        start = time.perf_counter()
        for x, y in queries:
            hashed.edge_weight(x, y)
        t_hashed = time.perf_counter() - start

        rows.append((count, t_tcm, t_scan, t_hashed))
    return rows
