"""Exp-1: effectiveness of edge queries (paper Section 6.2, Figs 7-10, 12,
Tables 2/4/5).

Every driver returns rows ready for :func:`repro.experiments.report
.format_table`; benchmarks and the CLI print them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments import datasets
from repro.experiments.common import (
    DEFAULT_SEED,
    build_edge_cm,
    build_gsketch,
    build_partitioned_tcm,
    build_tcm,
    cells_for_ratio,
    edge_query_are,
    edge_workload,
)
from repro.metrics.error import errors_by_segment
from repro.streams.model import GraphStream

QUERY_LIMIT = 4000  # max distinct edges per ARE evaluation (see common.py)


def fig7_edge_vs_ratio(name: str, scale: str = "small",
                       ratios: Optional[Sequence[float]] = None,
                       d: int = 9,
                       seed: int = DEFAULT_SEED) -> List[Tuple]:
    """Fig. 7: ARE of edge queries vs compression ratio, TCM vs CountMin.

    Returns rows ``(ratio, are_tcm, are_countmin)``.  Expected shape:
    both errors fall as the ratio loosens, and the two curves are close
    (same space, same collision bounds -- Theorem 1).
    """
    stream = datasets.by_name(name, scale)
    workload = edge_workload(stream, limit=QUERY_LIMIT)
    ratios = ratios if ratios is not None else datasets.DEFAULT_RATIOS[name]
    rows = []
    for ratio in ratios:
        tcm = build_tcm(stream, ratio, d, seed=seed)
        cm = build_edge_cm(stream, ratio, d, seed=seed)
        rows.append((
            f"1/{round(1 / ratio)}",
            edge_query_are(stream, tcm.edge_weight, workload),
            edge_query_are(stream, cm.edge_weight, workload),
        ))
    return rows


def fig8_weight_distribution(name: str, scale: str = "small",
                             buckets: int = 20) -> List[Tuple]:
    """Fig. 8: the edge-weight distribution of a dataset.

    Rows ``(bucket, min_weight, max_weight, edge_count)`` over
    equal-count weight buckets, ascending.  Expected shape: Zipfian --
    low-weight edges dominate by orders of magnitude.
    """
    stream = datasets.by_name(name, scale)
    weights = sorted(stream.edge_weight(*e) for e in stream.distinct_edges)
    if not weights:
        return []
    bounds = [round(i * len(weights) / buckets) for i in range(buckets + 1)]
    rows = []
    for b in range(buckets):
        chunk = weights[bounds[b]:bounds[b + 1]]
        if not chunk:
            continue
        rows.append((b + 1, min(chunk), max(chunk), len(chunk)))
    return rows


def fig9_edge_vs_d(name: str, scale: str = "small",
                   ratio: Optional[float] = None,
                   d_values: Sequence[int] = (1, 3, 5, 7, 9),
                   seed: int = DEFAULT_SEED) -> List[Tuple]:
    """Fig. 9: ARE of edge queries vs number of hash functions (fixed w).

    Rows ``(d, are_tcm, are_countmin)``.  Expected shape: both fall
    monotonically with d; curves close to each other.
    """
    stream = datasets.by_name(name, scale)
    ratio = ratio if ratio is not None else datasets.FIXED_RATIO[name]
    workload = edge_workload(stream, limit=QUERY_LIMIT)
    rows = []
    for d in d_values:
        tcm = build_tcm(stream, ratio, d, seed=seed)
        cm = build_edge_cm(stream, ratio, d, seed=seed)
        rows.append((
            d,
            edge_query_are(stream, tcm.edge_weight, workload),
            edge_query_are(stream, cm.edge_weight, workload),
        ))
    return rows


def fig10_weight_segments(name: str, scale: str = "small",
                          ratio: Optional[float] = None, d: int = 9,
                          segments: int = 10,
                          seed: int = DEFAULT_SEED) -> List[Tuple]:
    """Fig. 10: ARE per weight segment (lightest decile first).

    Rows ``(segment, are_tcm, are_countmin)``.  Expected shape: segment 1
    (lowest weights) has by far the highest error; error collapses toward
    the heavy segments.
    """
    stream = datasets.by_name(name, scale)
    ratio = ratio if ratio is not None else datasets.FIXED_RATIO[name]
    tcm = build_tcm(stream, ratio, d, seed=seed)
    cm = build_edge_cm(stream, ratio, d, seed=seed)
    ranked = sorted(stream.distinct_edges,
                    key=lambda e: (stream.edge_weight(*e), repr(e)))
    exact = lambda e: stream.edge_weight(*e)
    tcm_errors = errors_by_segment(ranked, segments, exact,
                                   lambda e: tcm.edge_weight(*e))
    cm_errors = errors_by_segment(ranked, segments, exact,
                                  lambda e: cm.edge_weight(*e))
    return [(s + 1, tcm_errors[s], cm_errors[s]) for s in range(segments)]


def gsketch_comparison(name: str, scale: str = "small",
                       ratio: Optional[float] = None,
                       d_values: Sequence[int] = (1, 3, 5, 7, 9),
                       partitions: int = 10,
                       seed: int = DEFAULT_SEED) -> List[Tuple]:
    """Tables 2/4/5: ARE of CountMin / TCM / gSketch / TCM(edge sample).

    Rows ``(method, are@d1, are@d3, ...)``.  Expected shape: plain
    CountMin ~ plain TCM; gSketch ~ TCM(edge sample), both several times
    lower thanks to sample partitioning.
    """
    stream = datasets.by_name(name, scale)
    ratio = ratio if ratio is not None else datasets.FIXED_RATIO[name]
    workload = edge_workload(stream, limit=QUERY_LIMIT)
    results = {"CountMin": [], "TCM": [], "gSketch": [], "TCM (edge sample)": []}
    for d in d_values:
        cm = build_edge_cm(stream, ratio, d, seed=seed)
        tcm = build_tcm(stream, ratio, d, seed=seed)
        gs = build_gsketch(stream, ratio, d, partitions=partitions, seed=seed)
        pt = build_partitioned_tcm(stream, ratio, d, partitions=partitions,
                                   seed=seed)
        results["CountMin"].append(edge_query_are(stream, cm.edge_weight, workload))
        results["TCM"].append(edge_query_are(stream, tcm.edge_weight, workload))
        results["gSketch"].append(edge_query_are(stream, gs.edge_weight, workload))
        results["TCM (edge sample)"].append(
            edge_query_are(stream, pt.edge_weight, workload))
    return [(method, *are_values) for method, are_values in results.items()]


def fig12_same_space_set(name: str, scale: str = "small",
                         ratio: Optional[float] = None,
                         d_values: Sequence[int] = (1, 3, 5, 7, 9),
                         seed: int = DEFAULT_SEED) -> List[Tuple]:
    """Fig. 12: one summary for a *set* of problems, same total space.

    TCM answers edge and node queries from one structure; CountMin needs
    an edge sketch *and* a node sketch, so at equal total space each CM
    sketch gets half the cells.  Rows ``(d, are_tcm, are_countmin_half)``
    for the edge-query half of the comparison (the node half is similar,
    as the paper notes).  Expected shape: TCM clearly lower.
    """
    stream = datasets.by_name(name, scale)
    ratio = ratio if ratio is not None else datasets.FIXED_RATIO[name]
    workload = edge_workload(stream, limit=QUERY_LIMIT)
    rows = []
    for d in d_values:
        tcm = build_tcm(stream, ratio, d, seed=seed)
        cm = build_edge_cm(stream, ratio / 2, d, seed=seed)  # half the space
        rows.append((
            d,
            edge_query_are(stream, tcm.edge_weight, workload),
            edge_query_are(stream, cm.edge_weight, workload),
        ))
    return rows


def heavy_edges_accuracy(name: str, scale: str = "small",
                         ratio: Optional[float] = None, d: int = 9,
                         k: int = 100,
                         nonsquare: bool = True,
                         seed: int = DEFAULT_SEED) -> Tuple:
    """Exp-1(d) / Fig. 11(a): top-k heavy-edge intersection accuracy.

    All three summaries get the same cell budget; the sample baseline is
    a same-space element reservoir.  Returns ``(accuracy_tcm,
    accuracy_countmin, accuracy_sample)``.  Expected shape: TCM ~
    CountMin >= sample; near 1.0 for the big-range IP-flow weights.
    """
    from repro.baselines.sampling import ReservoirEdgeSample
    from repro.core.heavy_hitters import HeavyEdgeMonitor
    from repro.core.tcm import TCM
    from repro.metrics.topk import intersection_accuracy, topk_items

    stream = datasets.by_name(name, scale)
    ratio = ratio if ratio is not None else datasets.FIXED_RATIO[name]
    truth = topk_items(stream.top_edges(k), k)

    cells = cells_for_ratio(stream, ratio)
    if nonsquare and stream.directed:
        tcm = TCM.with_varied_shapes(cells, d, seed=seed,
                                     directed=stream.directed)
    else:
        tcm = TCM.from_space(cells, d, seed=seed, directed=stream.directed)
    monitor = HeavyEdgeMonitor(tcm, k)
    monitor.consume(stream)
    tcm_top = topk_items(monitor.top(), k)

    # CountMin heavy edges via the same online candidate-tracking protocol.
    from repro.baselines.countmin import EdgeCountMin
    cm = EdgeCountMin(d, cells, seed=seed, directed=stream.directed)
    cm_candidates = {}
    for edge in stream:
        cm.update(edge.source, edge.target, edge.weight)
        s, t = edge.source, edge.target
        if not stream.directed and repr(s) > repr(t):
            s, t = t, s
        est = cm.edge_weight(s, t)
        key = (s, t)
        if key in cm_candidates or len(cm_candidates) < k:
            cm_candidates[key] = est
        elif est > min(cm_candidates.values()):
            victim = min(cm_candidates, key=lambda e: (cm_candidates[e], repr(e)))
            del cm_candidates[victim]
            cm_candidates[key] = est
    cm_top = [e for e, _ in sorted(cm_candidates.items(),
                                   key=lambda kv: (-kv[1], repr(kv[0])))[:k]]

    sample = ReservoirEdgeSample(cells, seed=seed, directed=stream.directed)
    sample.ingest(stream)
    sample_top = topk_items(sample.top_edges(k), k)

    return (intersection_accuracy(tcm_top, truth, k),
            intersection_accuracy(cm_top, truth, k),
            intersection_accuracy(sample_top, truth, k))
