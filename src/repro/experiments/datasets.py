"""Dataset registry for the experiments.

Four datasets mirroring the paper's Section 6.1.1, at laptop scales (the
substitutions are documented in DESIGN.md):

- ``dblp``    -- undirected co-authorship (DBLP substitute)
- ``ipflow``  -- directed weighted packet trace (CAIDA substitute)
- ``gtgraph`` -- directed R-MAT with Zipfian multiplicities (GTGraph)
- ``twitter`` -- large undirected link structure (efficiency only)

Each constructor is memoized per (name, scale) so drivers and benchmarks
share one build.  Scales: ``tiny`` (unit tests), ``small`` (benchmarks,
seconds), ``medium`` (CLI runs, tens of seconds).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Tuple

from repro.streams.generators import (
    dblp_like,
    ipflow_like,
    rmat,
    twitter_like,
    zipf_weights,
)
from repro.streams.model import GraphStream

# (n_primary, n_elements) per scale, chosen so every experiment's trend is
# visible while keeping full-suite runtime in minutes.
_SCALES: Dict[str, Dict[str, Tuple[int, int]]] = {
    "dblp": {"tiny": (300, 600), "small": (2000, 5000), "medium": (8000, 25000)},
    "ipflow": {"tiny": (150, 1200), "small": (1200, 25000), "medium": (5000, 120000)},
    "gtgraph": {"tiny": (256, 2000), "small": (4096, 40000), "medium": (16384, 250000)},
    "twitter": {"tiny": (512, 3000), "small": (4096, 60000), "medium": (16384, 400000)},
}

DATASET_NAMES = tuple(_SCALES)
_SEED = 20160626  # SIGMOD'16 started June 26, 2016.


def _params(name: str, scale: str) -> Tuple[int, int]:
    try:
        by_scale = _SCALES[name]
    except KeyError:
        raise ValueError(f"unknown dataset {name!r}; "
                         f"choose from {sorted(_SCALES)}") from None
    try:
        return by_scale[scale]
    except KeyError:
        raise ValueError(f"unknown scale {scale!r}; "
                         f"choose from {sorted(by_scale)}") from None


@lru_cache(maxsize=None)
def dblp(scale: str = "small") -> GraphStream:
    """DBLP-like undirected co-authorship stream."""
    n_authors, n_papers = _params("dblp", scale)
    return dblp_like(n_authors=n_authors, n_papers=n_papers, seed=_SEED)


@lru_cache(maxsize=None)
def ipflow(scale: str = "small") -> GraphStream:
    """CAIDA-like directed, byte-weighted packet trace."""
    n_hosts, n_packets = _params("ipflow", scale)
    return ipflow_like(n_hosts=n_hosts, n_packets=n_packets, seed=_SEED + 1)


@lru_cache(maxsize=None)
def gtgraph(scale: str = "small") -> GraphStream:
    """R-MAT power-law graph with Zipfian edge multiplicities as weights."""
    n_nodes, n_edges = _params("gtgraph", scale)
    weights = zipf_weights(n_edges, alpha=1.5, max_weight=200, seed=_SEED + 2)
    stream = rmat(n_nodes, n_edges, weights=weights, seed=_SEED + 3)
    # Weights are multiplicities here (paper Section 6.1.1 point 3), so
    # compression ratios measure the appearance-expanded stream.
    stream.multiplicity_weights = True
    return stream


@lru_cache(maxsize=None)
def twitter(scale: str = "small") -> GraphStream:
    """Power-law undirected link structure (throughput experiments only)."""
    n_users, n_links = _params("twitter", scale)
    return twitter_like(n_users=n_users, n_links=n_links, seed=_SEED + 4)


def by_name(name: str, scale: str = "small") -> GraphStream:
    """Dataset lookup used by the CLI and benches."""
    builders = {"dblp": dblp, "ipflow": ipflow, "gtgraph": gtgraph,
                "twitter": twitter}
    if name not in builders:
        raise ValueError(f"unknown dataset {name!r}; "
                         f"choose from {sorted(builders)}")
    return builders[name](scale)


# Per-dataset compression ratios; the paper sweeps different ranges per
# dataset because their stream sizes differ by orders of magnitude
# (DBLP/GTGraph: 1/40..1/160, IP flow: 1/300..1/700).  Our streams are
# smaller, so the equivalent sweep uses milder ratios; the *trend* -- more
# compression, more error -- is what fig7 checks.
DEFAULT_RATIOS: Dict[str, Tuple[float, ...]] = {
    "dblp": (1 / 2, 1 / 3, 1 / 4, 1 / 6, 1 / 8),
    "ipflow": (1 / 4, 1 / 8, 1 / 12, 1 / 16, 1 / 24),
    # gtgraph ratios are relative to the multiplicity-expanded stream
    # (weights count appearances), like the paper's 1/40..1/160 sweep.
    "gtgraph": (1 / 20, 1 / 40, 1 / 60, 1 / 80, 1 / 120),
    "twitter": (1 / 4, 1 / 8, 1 / 16, 1 / 24, 1 / 32),
}

# The fixed ratio used by the fixed-space experiments (fig9/10/11/13/...),
# mirroring the paper's 1/40 (DBLP), 1/600 (IP flow), 1/80 (GTGraph).
FIXED_RATIO: Dict[str, float] = {
    "dblp": 1 / 4,
    "ipflow": 1 / 16,
    "gtgraph": 1 / 80,
    "twitter": 1 / 8,
}
