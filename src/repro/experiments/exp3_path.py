"""Exp-3: path (reachability) queries (paper Fig. 14).

CountMin and sample-based sketches cannot answer reachability at all;
this experiment only has TCM curves, exactly as in the paper.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.tcm import TCM
from repro.experiments import datasets
from repro.experiments.common import (
    DEFAULT_SEED,
    cells_for_ratio,
    random_node_pairs,
)
from repro.streams.generators import rmat


def reachability_accuracy(stream, width: int, d: int, pairs_count: int = 100,
                          seed: int = DEFAULT_SEED) -> float:
    """Fraction of random node pairs whose reachability TCM gets right.

    Correct = true positive or true negative (paper's inter-accuracy for
    Exp-3).  TCM never yields false negatives (reachable pairs are always
    detected), so all mistakes are collision-made false positives.
    """
    tcm = TCM(d=d, width=width, seed=seed, directed=stream.directed)
    tcm.ingest(stream)
    pairs = random_node_pairs(stream, pairs_count, seed=seed)
    correct = sum(1 for a, b in pairs
                  if tcm.reachable(a, b) == stream.reachable(a, b))
    return correct / len(pairs)


def fig14a_reachability_vs_d(names: Sequence[str] = ("dblp", "ipflow", "gtgraph"),
                             scale: str = "small",
                             d_values: Sequence[int] = (1, 3, 5, 7, 9),
                             node_compression: int = 8,
                             pairs_count: int = 100,
                             seed: int = DEFAULT_SEED) -> List[Tuple]:
    """Fig. 14(a): reachability inter-accuracy vs d, per dataset.

    Rows ``(d, acc_dataset1, acc_dataset2, ...)``.  Expected shape:
    accuracy rises with d toward ~0.85-1.0.

    Sizing: like Fig. 14(b), connectivity experiments fix the node
    compression (``w = |V| / node_compression``) instead of a cell ratio;
    below the sparsity threshold the sketch graph saturates to a clique
    and every pair trivially reads as reachable at any d.
    """
    streams = {name: datasets.by_name(name, scale) for name in names}
    rows = []
    for d in d_values:
        row = [d]
        for name in names:
            stream = streams[name]
            width = max(2, len(stream.nodes) // node_compression)
            row.append(reachability_accuracy(stream, width, d,
                                             pairs_count, seed=seed))
        rows.append(tuple(row))
    return rows


def fig14b_true_negatives(density_values: Sequence[int] = (1, 3, 5, 7),
                          n_nodes: int = 1024,
                          d_values: Sequence[int] = (1, 3, 5, 7, 9),
                          node_compression: int = 2,
                          pairs_count: int = 100,
                          seed: int = DEFAULT_SEED) -> List[Tuple]:
    """Fig. 14(b): true-negative accuracy vs d on R-MAT graphs of varying
    density ``|E|/|V|``.

    Rows ``(d, acc@density1, acc@density3, ...)``.  Only *unreachable*
    ground-truth pairs are scored: the fraction TCM correctly reports as
    unreachable.  Expected shape: low at d=1, rising steeply with d;
    denser graphs have fewer negatives to get wrong.

    Sizing note: connectivity queries are only informative while the
    sketch graph stays sparser than complete, so this experiment fixes the
    *node* compression (``w = |V| / node_compression``) rather than a cell
    ratio -- with ``w`` below the saturation point every sketch would
    report everything reachable regardless of d and the figure would be a
    flat zero.
    """
    streams = {}
    for density in density_values:
        streams[density] = rmat(n_nodes, n_nodes * density,
                                seed=seed + density)
    width = max(2, n_nodes // node_compression)
    rows = []
    for d in d_values:
        row = [d]
        for density in density_values:
            stream = streams[density]
            tcm = TCM(d=d, width=width, seed=seed, directed=True)
            tcm.ingest(stream)
            # Collect unreachable ground-truth pairs.
            negatives = []
            attempt_seed = seed
            while len(negatives) < pairs_count and attempt_seed < seed + 50:
                for a, b in random_node_pairs(stream, pairs_count,
                                              seed=attempt_seed):
                    if len(negatives) >= pairs_count:
                        break
                    if not stream.reachable(a, b):
                        negatives.append((a, b))
                attempt_seed += 1
            if not negatives:
                row.append(float("nan"))  # graph too dense: no negatives
                continue
            correct = sum(1 for a, b in negatives if not tcm.reachable(a, b))
            row.append(correct / len(negatives))
        rows.append(tuple(row))
    return rows
