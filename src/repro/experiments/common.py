"""Shared builders and evaluation helpers for the experiment drivers.

Space accounting follows the paper's protocol (Section 6.2 Exp-1(a)):
a compression ratio ``c`` on a stream with ``|E|`` elements gives every
summary ``|E| * c`` cells -- a ``sqrt(|E|c) x sqrt(|E|c)`` matrix per TCM
sketch and a ``|E| * c``-wide row per CountMin hash function, so the two
are cell-for-cell comparable at every ``d``.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.countmin import EdgeCountMin, NodeCountMin
from repro.baselines.gsketch import GSketch, PartitionedTCM
from repro.baselines.sampling import SampledEdgeStore, SampledNodeStore
from repro.core.tcm import TCM
from repro.metrics.error import average_relative_error
from repro.streams.model import GraphStream

DEFAULT_SEED = 7


def cells_for_ratio(stream: GraphStream, ratio: float) -> int:
    """Space budget in cells for a compression ratio (``|G| * ratio``).

    ``|G|`` is the number of stream elements, except for streams whose
    weights encode edge multiplicities (the paper's GTGraph setup, where
    "the weight for each edge means the times the edge appeared in the
    stream"): there the stream size is the total weight, exactly as the
    paper's ``|E| = 1.444e9`` counts appearances, not distinct edges.
    """
    if not 0 < ratio <= 1:
        raise ValueError(f"compression ratio must be in (0, 1], got {ratio}")
    size = (stream.total_weight() if stream.multiplicity_weights
            else len(stream))
    return max(4, int(size * ratio))


def build_tcm(stream: GraphStream, ratio: float, d: int,
              seed: int = DEFAULT_SEED, **kwargs) -> TCM:
    """Square TCM at a compression ratio, fully ingested."""
    cells = cells_for_ratio(stream, ratio)
    tcm = TCM.from_space(cells, d, seed=seed, directed=stream.directed,
                         **kwargs)
    tcm.ingest(stream)
    return tcm


def build_edge_cm(stream: GraphStream, ratio: float, d: int,
                  seed: int = DEFAULT_SEED) -> EdgeCountMin:
    """Edge CountMin with the same per-hash-function cell budget."""
    cells = cells_for_ratio(stream, ratio)
    cm = EdgeCountMin(d, cells, seed=seed, directed=stream.directed)
    cm.ingest(stream)
    return cm


def build_node_cm(stream: GraphStream, ratio: float, d: int,
                  direction: str, seed: int = DEFAULT_SEED) -> NodeCountMin:
    cells = cells_for_ratio(stream, ratio)
    cm = NodeCountMin(d, cells, seed=seed, direction=direction)
    cm.ingest(stream)
    return cm


def build_gsketch(stream: GraphStream, ratio: float, d: int,
                  partitions: int = 10, sample_fraction: float = 0.1,
                  seed: int = DEFAULT_SEED) -> GSketch:
    """gSketch primed with a prefix sample of the stream."""
    cells = cells_for_ratio(stream, ratio)
    sample = stream_prefix(stream, sample_fraction)
    sketch = GSketch(sample, partitions, d, cells, seed=seed,
                     directed=stream.directed,
                     sample_fraction=sample_fraction)
    sketch.ingest(stream)
    return sketch


def build_partitioned_tcm(stream: GraphStream, ratio: float, d: int,
                          partitions: int = 10, sample_fraction: float = 0.1,
                          seed: int = DEFAULT_SEED) -> PartitionedTCM:
    """"TCM (edge sample)": gSketch partitioning bolted onto TCM."""
    cells = cells_for_ratio(stream, ratio)
    sample = stream_prefix(stream, sample_fraction)
    sketch = PartitionedTCM(sample, partitions, d, cells, seed=seed,
                            directed=stream.directed,
                            sample_fraction=sample_fraction)
    sketch.ingest(stream)
    return sketch


def build_edge_sample(stream: GraphStream, rate: float = 0.5,
                      seed: int = DEFAULT_SEED) -> SampledEdgeStore:
    store = SampledEdgeStore(rate, seed=seed, directed=stream.directed)
    store.ingest(stream)
    return store


def build_node_sample(stream: GraphStream, rate: float = 0.5,
                      direction: str = "in",
                      seed: int = DEFAULT_SEED) -> SampledNodeStore:
    store = SampledNodeStore(rate, seed=seed, direction=direction)
    store.ingest(stream)
    return store


def stream_prefix(stream: GraphStream, fraction: float) -> GraphStream:
    """The leading ``fraction`` of a stream as its own stream (sampling)."""
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    cutoff = max(1, int(len(stream) * fraction))
    prefix = GraphStream(directed=stream.directed)
    for i in range(cutoff):
        prefix.append(stream[i])
    return prefix


def edge_workload(stream: GraphStream,
                  limit: Optional[int] = None,
                  seed: int = DEFAULT_SEED) -> List[Tuple[object, object]]:
    """The distinct edges of the stream, optionally subsampled.

    The paper evaluates edge-query ARE over all distinct stream edges;
    ``limit`` keeps benchmark runtime bounded on bigger scales (a uniform
    subsample preserves the weight distribution and hence the ARE).
    """
    edges = sorted(stream.distinct_edges, key=repr)
    if limit is not None and len(edges) > limit:
        rng = np.random.default_rng(seed)
        picks = rng.choice(len(edges), size=limit, replace=False)
        edges = [edges[i] for i in sorted(picks)]
    return edges


def edge_query_are(stream: GraphStream,
                   estimator: Callable[[object, object], float],
                   workload: Optional[Sequence[Tuple[object, object]]] = None
                   ) -> float:
    """Average relative error of edge-weight queries over a workload."""
    edges = workload if workload is not None else edge_workload(stream)
    return average_relative_error(
        edges,
        exact=lambda e: stream.edge_weight(*e),
        estimate=lambda e: estimator(*e))


def node_workload(stream: GraphStream,
                  direction: str = "in",
                  limit: Optional[int] = None,
                  seed: int = DEFAULT_SEED) -> List[object]:
    """Nodes with non-zero flow in the queried direction."""
    if direction == "in":
        nodes = [n for n in stream.nodes if stream.in_flow(n) > 0]
    elif direction == "out":
        nodes = [n for n in stream.nodes if stream.out_flow(n) > 0]
    else:
        nodes = [n for n in stream.nodes if stream.out_flow(n) > 0]
    nodes.sort(key=repr)
    if limit is not None and len(nodes) > limit:
        rng = np.random.default_rng(seed)
        picks = rng.choice(len(nodes), size=limit, replace=False)
        nodes = [nodes[i] for i in sorted(picks)]
    return nodes


def random_node_pairs(stream: GraphStream, count: int,
                      seed: int = DEFAULT_SEED) -> List[Tuple[object, object]]:
    """``count`` random ordered node pairs (reachability workload)."""
    nodes = sorted(stream.nodes, key=repr)
    if len(nodes) < 2:
        raise ValueError("stream has fewer than 2 nodes")
    rng = np.random.default_rng(seed)
    pairs = []
    for _ in range(count):
        i, j = rng.choice(len(nodes), size=2, replace=False)
        pairs.append((nodes[int(i)], nodes[int(j)]))
    return pairs


def width_for_ratio(stream: GraphStream, ratio: float) -> int:
    """Side length of the square TCM matrix at this ratio."""
    return max(1, int(math.isqrt(cells_for_ratio(stream, ratio))))
