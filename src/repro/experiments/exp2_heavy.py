"""Exp-2: node queries -- heavy nodes, conditional heavy hitters, NDCG
(paper Fig. 11(b), Fig. 13, Appendix C.3).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.heavy_hitters import (
    ConditionalHeavyHitterMonitor,
    HeavyEdgeMonitor,
    HeavyNodeMonitor,
)
from repro.core.tcm import TCM
from repro.experiments import datasets
from repro.experiments.common import DEFAULT_SEED, cells_for_ratio
from repro.metrics.topk import intersection_accuracy, ndcg, topk_items


def _node_direction(stream) -> str:
    return "both" if not stream.directed else "in"


def heavy_nodes_accuracy(name: str, scale: str = "small",
                         ratio: Optional[float] = None, d: int = 9,
                         k: int = 100,
                         seed: int = DEFAULT_SEED) -> Tuple:
    """Fig. 11(b): top-k heavy-node intersection accuracy.

    All three summaries get the same cell budget; the sample baseline is
    a same-space element reservoir.  Returns ``(accuracy_tcm,
    accuracy_countmin, accuracy_sample)``.  Expected shape: TCM ~
    CountMin > sample.  Note the space asymmetry the paper points out:
    TCM reuses the sketches already built for edge queries, while
    CountMin and sampling must build *node-keyed* structures separately.
    """
    stream = datasets.by_name(name, scale)
    ratio = ratio if ratio is not None else datasets.FIXED_RATIO[name]
    direction = _node_direction(stream)
    truth_direction = "both" if direction == "both" else "in"
    truth = topk_items(stream.top_nodes(k, direction=truth_direction), k)

    cells = cells_for_ratio(stream, ratio)
    tcm = TCM.from_space(cells, d, seed=seed, directed=stream.directed)
    monitor = HeavyNodeMonitor(tcm, k, direction=direction)
    monitor.consume(stream)
    tcm_top = topk_items(monitor.top(), k)

    # Online CountMin node-sketch tracking, same protocol.
    from repro.baselines.countmin import NodeCountMin
    cm = NodeCountMin(d, cells, seed=seed, direction=direction)
    cm_candidates = {}
    for edge in stream:
        cm.update(edge.source, edge.target, edge.weight)
        nodes = ((edge.target,) if direction == "in"
                 else (edge.source,) if direction == "out"
                 else (edge.source, edge.target))
        for node in nodes:
            est = cm.flow(node)
            if node in cm_candidates or len(cm_candidates) < k:
                cm_candidates[node] = est
            elif est > min(cm_candidates.values()):
                victim = min(cm_candidates,
                             key=lambda n: (cm_candidates[n], repr(n)))
                del cm_candidates[victim]
                cm_candidates[node] = est
    cm_top = [n for n, _ in sorted(cm_candidates.items(),
                                   key=lambda kv: (-kv[1], repr(kv[0])))[:k]]

    from repro.baselines.sampling import ReservoirEdgeSample
    sample = ReservoirEdgeSample(cells, seed=seed, directed=stream.directed)
    sample.ingest(stream)
    sample_top = topk_items(sample.top_nodes(k, direction=direction), k)

    return (intersection_accuracy(tcm_top, truth, k),
            intersection_accuracy(cm_top, truth, k),
            intersection_accuracy(sample_top, truth, k))


def fig11_heavy_hitters(names: Sequence[str] = ("dblp", "ipflow"),
                        scale: str = "small", d: int = 9,
                        edge_k: int = 100, node_k: int = 50,
                        node_ratio: float = 1 / 3,
                        seed: int = DEFAULT_SEED) -> List[Tuple]:
    """Fig. 11: heavy edges and heavy nodes, per dataset and method.

    Rows ``(dataset, kind, acc_tcm, acc_countmin, acc_sample)``.

    The node half uses k=50 and a slightly looser ratio: node-flow
    estimates sum a whole matrix row, whose noise floor is ``W/w`` -- at
    laptop scale only the top ~50 node flows sit above it (the paper's
    281K-IP streams put the top 100 of them above the floor at their w).
    EXPERIMENTS.md discusses this scaling in detail.
    """
    from repro.experiments.exp1_edge import heavy_edges_accuracy

    rows = []
    for name in names:
        edge_acc = heavy_edges_accuracy(name, scale, d=d, k=edge_k, seed=seed)
        rows.append((name, "heavy edges", *edge_acc))
        node_acc = heavy_nodes_accuracy(name, scale, ratio=node_ratio,
                                        d=d, k=node_k, seed=seed)
        rows.append((name, "heavy nodes", *node_acc))
    return rows


def fig13_conditional_heavy_hitters(scale: str = "small",
                                    ratio: Optional[float] = None,
                                    d: int = 9, k: int = 5, l: int = 5,
                                    seed: int = DEFAULT_SEED) -> List[Tuple]:
    """Fig. 13: conditional heavy hitters on the DBLP-like stream.

    Rows ``(author, est_flow, exact_rank_hit, [top-l collaborators])``:
    for each detected heavy author, whether it is a true top-k author and
    how many of its detected top-l collaborators are among its true top-l
    collaborators (the paper's manual check: 3-5 of 5).
    """
    stream = datasets.dblp(scale)
    ratio = ratio if ratio is not None else datasets.FIXED_RATIO["dblp"]
    cells = cells_for_ratio(stream, ratio)
    tcm = TCM.from_space(cells, d, seed=seed, directed=False)
    monitor = ConditionalHeavyHitterMonitor(tcm, k=k, l=l, direction="both")
    monitor.consume(stream)

    true_top = set(topk_items(stream.top_nodes(k, direction="both"), k))
    rows = []
    for author, flow, collaborators in monitor.top():
        # Ground-truth top-l collaborators of this author.
        neighbours = stream.successors(author)
        ranked = sorted(neighbours,
                        key=lambda z: (-stream.edge_weight(author, z), repr(z)))
        true_collab = set(ranked[:l])
        found = [z for z, _ in collaborators]
        overlap = len(true_collab & set(found))
        rows.append((author, flow, author in true_top,
                     f"{overlap}/{min(l, len(true_collab))}",
                     ", ".join(str(z) for z in found)))
    return rows


def ndcg_table(name: str = "ipflow", scale: str = "small",
               ratio: Optional[float] = None, d: int = 9,
               k_values: Sequence[int] = (10, 50, 100),
               seed: int = DEFAULT_SEED) -> List[Tuple]:
    """Appendix C.3: NDCG of top-k heavy edges and nodes.

    Rows ``(k, ndcg_heavy_edges, ndcg_heavy_nodes)``; the paper reports
    ~0.99 everywhere.
    """
    stream = datasets.by_name(name, scale)
    ratio = ratio if ratio is not None else datasets.FIXED_RATIO[name]
    cells = cells_for_ratio(stream, ratio)
    direction = _node_direction(stream)

    max_k = max(k_values)
    tcm_e = TCM.from_space(cells, d, seed=seed, directed=stream.directed)
    edge_monitor = HeavyEdgeMonitor(tcm_e, max_k)
    edge_monitor.consume(stream)
    edge_ranking = topk_items(edge_monitor.top(), max_k)
    edge_scores = {e: w for e, w in stream.top_edges(max_k)}

    tcm_n = TCM.from_space(cells, d, seed=seed + 1, directed=stream.directed)
    node_monitor = HeavyNodeMonitor(tcm_n, max_k, direction=direction)
    node_monitor.consume(stream)
    node_ranking = topk_items(node_monitor.top(), max_k)
    truth_direction = "both" if direction == "both" else "in"
    node_scores = {n: w for n, w in stream.top_nodes(max_k, truth_direction)}

    return [(k,
             ndcg(edge_ranking, edge_scores, k),
             ndcg(node_ranking, node_scores, k))
            for k in k_values]
