"""Exp-4: graph analytics -- subgraph queries and heavy triangle
connections (paper Fig. 15, Fig. 16).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.heavy_hitters import HeavyEdgeMonitor
from repro.core.tcm import TCM
from repro.core.triangles import heavy_triangle_connections, triangle_score
from repro.experiments import datasets
from repro.experiments.common import (
    DEFAULT_SEED,
    build_edge_cm,
    build_tcm,
    cells_for_ratio,
)
from repro.metrics.error import average_relative_error
from repro.streams.generators import query_graphs_from_stream


def fig15_subgraph_vs_d(name: str, scale: str = "small",
                        ratio: Optional[float] = None,
                        d_values: Sequence[int] = (1, 3, 5, 7, 9),
                        query_count: int = 20,
                        seed: int = DEFAULT_SEED) -> List[Tuple]:
    """Fig. 15: ARE of aggregate subgraph queries vs d, TCM vs CountMin.

    The workload is 20 connected query graphs of 2-8 edges sampled from
    the stream (paths, stars, general shapes), evaluated with the
    decomposed estimator (sum of per-edge estimates -- the paper's note
    that "subgraph queries are considered as summing up the estimated
    edge frequencies").  Rows ``(d, are_tcm, are_countmin)``.  Expected
    shape: falls with d and sits *below* the edge-query ARE because heavy
    edges dominate each query's total.
    """
    stream = datasets.by_name(name, scale)
    ratio = ratio if ratio is not None else datasets.FIXED_RATIO[name]
    queries = query_graphs_from_stream(stream, count=query_count, seed=seed)
    if not queries:
        raise ValueError(f"could not sample query graphs from {name!r}")
    rows = []
    for d in d_values:
        tcm = build_tcm(stream, ratio, d, seed=seed)
        cm = build_edge_cm(stream, ratio, d, seed=seed)
        are_tcm = average_relative_error(
            queries,
            exact=stream.subgraph_weight,
            estimate=tcm.subgraph_weight_decomposed)
        are_cm = average_relative_error(
            queries,
            exact=stream.subgraph_weight,
            estimate=cm.subgraph_weight)
        rows.append((d, are_tcm, are_cm))
    return rows


def fig16_heavy_triangles(scale: str = "small",
                          ratio: Optional[float] = None,
                          d: int = 9, k: int = 5, l: int = 5,
                          seed: int = DEFAULT_SEED) -> List[Tuple]:
    """Fig. 16: heavy triangle connections on the DBLP-like stream.

    Uses the extended sketch (labels materialized) per Algorithm 2.
    Rows ``(edge, hit_ratio, [top-l common collaborators])`` where
    ``hit_ratio`` counts how many detected connections are in the ground
    truth top-l (the paper's manual check found 4/5).

    Default ratio is looser than the edge-query experiments (1/2):
    candidate generation intersects bucket adjacency, so the extended
    sketch needs enough buckets for common-neighbour candidates not to
    drown in per-bucket label sets (~n/w labels each).
    """
    stream = datasets.dblp(scale)
    ratio = ratio if ratio is not None else 1 / 2
    cells = cells_for_ratio(stream, ratio)
    tcm = TCM.from_space(cells, d, seed=seed, directed=False,
                         keep_labels=True)
    monitor = HeavyEdgeMonitor(tcm, k)
    monitor.consume(stream)
    heavy_edges = [edge for edge, _ in monitor.top()]

    results = heavy_triangle_connections(tcm, heavy_edges, l)
    rows = []
    for (x, y), connections in results:
        truth = _true_triangle_connections(stream, x, y, l)
        found = [z for z, _ in connections]
        overlap = len(set(found) & set(truth))
        denominator = min(l, len(truth)) if truth else 0
        hit = f"{overlap}/{denominator}" if denominator else "n/a"
        rows.append((f"{x} -- {y}", hit,
                     ", ".join(str(z) for z in found)))
    return rows


def _true_triangle_connections(stream, x, y, l: int) -> List:
    """Ground-truth top-l common neighbours of (x, y) by the Algorithm 2
    ranking function, computed on the exact graph."""
    common = stream.successors(x) & stream.successors(y)
    common.discard(x)
    common.discard(y)
    scored = []
    for z in common:
        score = triangle_score(stream.edge_weight(z, x),
                               stream.edge_weight(z, y))
        if score > 0:
            scored.append((z, score))
    scored.sort(key=lambda kv: (-kv[1], repr(kv[0])))
    return [z for z, _ in scored[:l]]


def triangle_count_estimate(name: str = "gtgraph", scale: str = "tiny",
                            ratio: Optional[float] = None, d: int = 4,
                            seed: int = DEFAULT_SEED) -> Tuple[int, int]:
    """Ablation helper: estimated vs approximate-exact triangle counts.

    Returns ``(estimate, exact)`` where the estimate runs the black-box
    triangle counter per sketch and merges with min -- always an
    over-approximation on compressed graphs.
    """
    from repro.analytics.triangles import count_triangles
    from repro.analytics.views import StreamView

    stream = datasets.by_name(name, scale)
    ratio = ratio if ratio is not None else datasets.FIXED_RATIO[name]
    tcm = build_tcm(stream, ratio, d, seed=seed)
    return tcm.triangle_count(), count_triangles(
        StreamView(stream), directed=stream.directed)
