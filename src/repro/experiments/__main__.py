"""CLI entry point: regenerate any of the paper's tables/figures.

Usage::

    python -m repro.experiments fig7 --dataset dblp --scale small
    python -m repro.experiments all --scale tiny

Experiment ids match DESIGN.md's per-experiment index.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments import datasets
from repro.experiments.capability import QUERY_CLASSES, table3_capabilities
from repro.experiments.exp1_edge import (
    fig7_edge_vs_ratio,
    fig8_weight_distribution,
    fig9_edge_vs_d,
    fig10_weight_segments,
    fig12_same_space_set,
    gsketch_comparison,
)
from repro.experiments.exp2_heavy import (
    fig11_heavy_hitters,
    fig13_conditional_heavy_hitters,
    ndcg_table,
)
from repro.experiments.exp3_path import (
    fig14a_reachability_vs_d,
    fig14b_true_negatives,
)
from repro.experiments.exp4_graph import fig15_subgraph_vs_d, fig16_heavy_triangles
from repro.experiments.exp5_efficiency import (
    build_time_breakdown,
    query_time_table,
)
from repro.experiments.report import print_table

_D_HEADERS = ["d", "TCM", "CountMin"]


def _run_fig7(args) -> None:
    for name in _datasets(args, ("dblp", "ipflow", "gtgraph")):
        rows = fig7_edge_vs_ratio(name, args.scale)
        print_table(f"Fig. 7 -- edge-query ARE vs compression ratio ({name})",
                    ["ratio", "TCM", "CountMin"], rows)


def _run_fig8(args) -> None:
    for name in _datasets(args, ("dblp", "ipflow", "gtgraph")):
        rows = fig8_weight_distribution(name, args.scale)
        print_table(f"Fig. 8 -- edge-weight distribution ({name})",
                    ["bucket", "min w", "max w", "edges"], rows)


def _run_fig9(args) -> None:
    for name in _datasets(args, ("dblp", "ipflow", "gtgraph")):
        rows = fig9_edge_vs_d(name, args.scale)
        print_table(f"Fig. 9 -- edge-query ARE vs d ({name})", _D_HEADERS, rows)


def _run_fig10(args) -> None:
    for name in _datasets(args, ("dblp", "ipflow", "gtgraph")):
        rows = fig10_weight_segments(name, args.scale)
        print_table(f"Fig. 10 -- ARE per weight segment ({name})",
                    ["segment", "TCM", "CountMin"], rows)


def _run_fig11(args) -> None:
    rows = fig11_heavy_hitters(scale=args.scale)
    print_table("Fig. 11 -- heavy hitters (top-100 intersection accuracy)",
                ["dataset", "kind", "TCM", "CountMin", "sample"], rows)


def _run_table2(args) -> None:
    rows = gsketch_comparison("ipflow", args.scale)
    print_table("Table 2 -- edge-query ARE, IP flow",
                ["method", "d=1", "d=3", "d=5", "d=7", "d=9"], rows)


def _run_table4(args) -> None:
    rows = gsketch_comparison("dblp", args.scale)
    print_table("Table 4 -- edge-query ARE, DBLP",
                ["method", "d=1", "d=3", "d=5", "d=7", "d=9"], rows)


def _run_table5(args) -> None:
    rows = gsketch_comparison("gtgraph", args.scale)
    print_table("Table 5 -- edge-query ARE, GTGraph",
                ["method", "d=1", "d=3", "d=5", "d=7", "d=9"], rows)


def _run_fig12(args) -> None:
    for name in _datasets(args, ("dblp", "ipflow", "gtgraph")):
        rows = fig12_same_space_set(name, args.scale)
        print_table(f"Fig. 12 -- same space for a set of problems ({name})",
                    ["d", "TCM", "CountMin (half space)"], rows)


def _run_fig13(args) -> None:
    rows = fig13_conditional_heavy_hitters(args.scale)
    print_table("Fig. 13 -- conditional heavy hitters (DBLP-like)",
                ["author", "est. flow", "true top-k?", "collab hits",
                 "top-5 collaborators"], rows)


def _run_fig14(args) -> None:
    rows = fig14a_reachability_vs_d(scale=args.scale)
    print_table("Fig. 14(a) -- reachability inter-accuracy vs d",
                ["d", "dblp", "ipflow", "gtgraph"], rows)
    rows = fig14b_true_negatives()
    print_table("Fig. 14(b) -- true-negative accuracy vs d (R-MAT)",
                ["d", "|E|/|V|=1", "|E|/|V|=3", "|E|/|V|=5", "|E|/|V|=7"],
                rows)


def _run_fig15(args) -> None:
    for name in _datasets(args, ("dblp", "ipflow")):
        rows = fig15_subgraph_vs_d(name, args.scale)
        print_table(f"Fig. 15 -- subgraph-query ARE vs d ({name})",
                    _D_HEADERS, rows)


def _run_fig16(args) -> None:
    rows = fig16_heavy_triangles(args.scale)
    print_table("Fig. 16 -- heavy triangle connections (DBLP-like)",
                ["heavy edge", "hits", "top-5 connections"], rows)


def _run_fig17(args) -> None:
    for name in _datasets(args, ("dblp", "ipflow", "gtgraph", "twitter")):
        rows = build_time_breakdown(name, args.scale)
        print_table(f"Fig. 17 -- build time breakdown ({name})",
                    ["d", "CM-string", "CM-hash", "TCM-string", "TCM-hash"],
                    rows)


def _run_table3(args) -> None:
    rows = table3_capabilities()
    print_table("Table 3 -- analytics supported by different sketches",
                ["summary", *QUERY_CLASSES], rows)


def _run_ndcg(args) -> None:
    rows = ndcg_table(scale=args.scale)
    print_table("Appendix C.3 -- NDCG of top-k heavy edges/nodes (IP flow)",
                ["k", "heavy edges", "heavy nodes"], rows)


def _run_qtime(args) -> None:
    rows = query_time_table(scale=args.scale)
    print_table("Appendix C.4 -- edge-query time (seconds)",
                ["#queries", "TCM", "adjacency list", "hashed list"], rows)


def _run_profiles(args) -> None:
    from repro.experiments.profiles import PROFILE_HEADERS, profile_table
    rows = profile_table(scale=args.scale)
    print_table("Extension -- dataset fingerprints",
                list(PROFILE_HEADERS), rows)


def _run_sweep(args) -> None:
    from repro.experiments.sweeps import accuracy_grid
    d_values = (1, 3, 5, 7, 9)
    for name in _datasets(args, ("gtgraph",)):
        rows = accuracy_grid(name, args.scale, d_values=d_values)
        print_table(f"Extension -- edge-query ARE grid, TCM ({name})",
                    ["ratio"] + [f"d={d}" for d in d_values], rows)


def _run_calibration(args) -> None:
    from repro.experiments.calibration import calibration_table
    rows = calibration_table("gtgraph", args.scale)
    print_table("Extension -- Theorem 1 calibration (gtgraph)",
                ["eps", "delta", "d", "w", "violation rate"], rows)


_EXPERIMENTS = {
    "fig7": _run_fig7, "fig8": _run_fig8, "fig9": _run_fig9,
    "fig10": _run_fig10, "fig11": _run_fig11, "fig12": _run_fig12,
    "fig13": _run_fig13, "fig14": _run_fig14, "fig15": _run_fig15,
    "fig16": _run_fig16, "fig17": _run_fig17,
    "table2": _run_table2, "table3": _run_table3, "table4": _run_table4,
    "table5": _run_table5, "ndcg": _run_ndcg, "qtime": _run_qtime,
    "profiles": _run_profiles, "sweep": _run_sweep,
    "calibration": _run_calibration,
}


def _datasets(args, default: Sequence[str]) -> Sequence[str]:
    return (args.dataset,) if args.dataset else default


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment",
                        choices=sorted(_EXPERIMENTS) + ["all", "report"],
                        help="experiment id from DESIGN.md, 'all', or "
                             "'report' (write a Markdown report)")
    parser.add_argument("--dataset", choices=datasets.DATASET_NAMES,
                        default=None,
                        help="restrict multi-dataset experiments to one")
    parser.add_argument("--scale", choices=("tiny", "small", "medium"),
                        default="small", help="dataset scale")
    parser.add_argument("--out", default=None,
                        help="output path for 'report' (default: stdout)")
    args = parser.parse_args(argv)

    if args.experiment == "report":
        from repro.experiments.report_markdown import generate_report
        document = generate_report(args.scale)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(document)
            print(f"wrote {args.out}")
        else:
            print(document)
    elif args.experiment == "all":
        for key in sorted(_EXPERIMENTS):
            _EXPERIMENTS[key](args)
    else:
        _EXPERIMENTS[args.experiment](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
