"""Table 3 (Appendix C.1): the analytics-support matrix.

Rather than hard-coding the paper's table, this driver *probes* each
summary type: it builds a small instance, attempts each query class and
records whether the API supports it.  The result must match the paper's
matrix -- a test asserts exactly that.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.baselines.countmin import EdgeCountMin, NodeCountMin
from repro.baselines.sampling import SampledEdgeStore, SampledNodeStore
from repro.core.heavy_hitters import ConditionalHeavyHitterMonitor
from repro.core.tcm import TCM
from repro.core.triangles import heavy_triangle_connections
from repro.streams.generators import path_stream

QUERY_CLASSES = (
    "edge", "node", "conditional heavy hitters", "reachability",
    "subgraph (explicit)", "heavy triangle connections",
)


def _probe(summary_name: str) -> dict:
    """Build one summary over a toy stream and try each query class."""
    stream = path_stream(["a", "b", "c", "d"])
    support = {q: False for q in QUERY_CLASSES}

    if summary_name == "TCM":
        tcm = TCM(d=2, width=8, seed=1, keep_labels=True)
        tcm.ingest(stream)
        support["edge"] = tcm.edge_weight("a", "b") >= 0
        support["node"] = tcm.out_flow("a") >= 0
        support["reachability"] = isinstance(tcm.reachable("a", "d"), bool)
        support["subgraph (explicit)"] = (
            tcm.subgraph_weight([("a", "b"), ("b", "c")]) >= 0)
        monitor = ConditionalHeavyHitterMonitor(
            TCM(d=2, width=8, seed=2), k=2, l=2)
        monitor.consume(stream)
        support["conditional heavy hitters"] = len(monitor.top()) > 0
        triangles = heavy_triangle_connections(tcm, [("a", "b")], l=2)
        support["heavy triangle connections"] = len(triangles) == 1
    elif summary_name in ("CountMin (edge) / gSketch",):
        cm = EdgeCountMin(2, 16, seed=1)
        cm.ingest(stream)
        support["edge"] = cm.edge_weight("a", "b") >= 0
        support["subgraph (explicit)"] = (
            cm.subgraph_weight([("a", "b"), ("b", "c")]) >= 0)
        # No graphical structure: node flows, connectivity, conditional
        # heavy hitters and triangles are unanswerable by construction.
    elif summary_name == "CountMin (node)":
        cm = NodeCountMin(2, 16, seed=1, direction="out")
        cm.ingest(stream)
        support["node"] = cm.flow("a") >= 0
    elif summary_name == "sample (edge)":
        store = SampledEdgeStore(1.0, seed=1)
        store.ingest(stream)
        support["edge"] = store.edge_weight("a", "b") >= 0
    elif summary_name == "sample (node)":
        store = SampledNodeStore(1.0, seed=1, direction="out")
        store.ingest(stream)
        support["node"] = store.flow("a") >= 0
    else:
        raise ValueError(f"unknown summary {summary_name!r}")
    return support


def table3_capabilities() -> List[Tuple]:
    """Rows ``(summary, yes/no per query class)`` -- must equal Table 3."""
    summaries = ("TCM", "CountMin (edge) / gSketch", "CountMin (node)",
                 "sample (edge)", "sample (node)")
    rows = []
    for summary in summaries:
        support = _probe(summary)
        rows.append((summary, *(support[q] for q in QUERY_CLASSES)))
    return rows
