"""Plain-text table formatting for experiment output.

Keeps the drivers pure: they return rows, and the CLI / benchmarks render
them with :func:`format_table` in the same rows-and-series style the paper
reports.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _render(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render rows as an aligned monospace table with a header rule."""
    rendered: List[List[str]] = [[_render(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header.rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)).rstrip())
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence]) -> None:
    """Print a titled table (used by the CLI and benchmarks)."""
    print(f"\n== {title} ==")
    print(format_table(headers, rows))
