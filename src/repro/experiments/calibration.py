"""Calibration: measured error quantiles against Theorem 1's guarantee.

For a grid of (epsilon, delta) targets, size the TCM with
:func:`repro.metrics.bounds.parameters_for_guarantee`, measure the actual
edge-query over-counts on a workload, and report the fraction of queries
violating ``estimate <= exact + eps * n``.  Theorem 1 promises the
violation rate stays below delta; measured rates are usually far below
(the bound is loose by the usual Markov-argument factor).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.tcm import TCM
from repro.experiments import datasets
from repro.experiments.common import DEFAULT_SEED, edge_workload
from repro.metrics.bounds import parameters_for_guarantee


def calibration_table(name: str = "gtgraph", scale: str = "tiny",
                      targets: Sequence[Tuple[float, float]] = (
                          (0.05, 0.2), (0.02, 0.1), (0.01, 0.05)),
                      trials: int = 5,
                      seed: int = DEFAULT_SEED) -> List[Tuple]:
    """Rows ``(eps, delta, d, w, measured_violation_rate)``.

    Violation rates are averaged over ``trials`` independently-seeded
    summaries so a single unlucky hash draw cannot dominate.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    stream = datasets.by_name(name, scale)
    n = stream.total_weight()
    workload = edge_workload(stream, limit=500)
    rows: List[Tuple] = []
    for epsilon, delta in targets:
        d, w = parameters_for_guarantee(epsilon, delta)
        violations = 0
        checked = 0
        for trial in range(trials):
            tcm = TCM(d=d, width=w, seed=seed + 101 * trial,
                      directed=stream.directed)
            tcm.ingest(stream)
            for x, y in workload:
                if tcm.edge_weight(x, y) > stream.edge_weight(x, y) + epsilon * n:
                    violations += 1
                checked += 1
        rows.append((epsilon, delta, d, w, violations / checked))
    return rows
