"""Bottom-k sketch (Cohen & Kaplan, PVLDB 2008).

The third classic data-stream summary the paper's related work names.  A
bottom-k sketch keeps the ``k`` items with the smallest values of a
random hash ``h(item) -> (0, 1)``; from those it estimates the number of
*distinct* items (and, with per-item weights, supports subset-weight
estimators).  On a graph stream, keyed on edges it estimates the
distinct-edge count; keyed on nodes, the node count -- cardinalities the
counter-based sketches do not expose.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.hashing.family import HashFamily, MERSENNE_PRIME_61
from repro.hashing.labels import Label, label_to_int


class BottomKSketch:
    """Distinct-count estimator keeping the k smallest hash values.

    :param k: sketch size; relative error of the distinct count is
        roughly ``1/sqrt(k)``.
    """

    def __init__(self, k: int = 64, seed: Optional[int] = 0):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._hash = HashFamily.uniform(1, 1, seed=seed)[0]
        # Max-heap (negated) of the k smallest (rank, key) pairs, plus a
        # membership set for O(1) duplicate suppression.
        self._heap: List[Tuple[float, int]] = []
        self._members: Dict[int, float] = {}

    def _rank(self, key: int) -> float:
        """Map a key to a pseudo-uniform rank in (0, 1)."""
        value = (self._hash.a * (key % MERSENNE_PRIME_61)
                 + self._hash.b) % MERSENNE_PRIME_61
        return (value + 1) / (MERSENNE_PRIME_61 + 1)

    def update(self, item: Label) -> None:
        """Observe one occurrence; duplicates never change the sketch."""
        key = label_to_int(item)
        if key in self._members:
            return
        rank = self._rank(key)
        if len(self._members) < self.k:
            self._members[key] = rank
            heapq.heappush(self._heap, (-rank, key))
            return
        largest_rank = -self._heap[0][0]
        if rank < largest_rank:
            _, evicted = heapq.heappop(self._heap)
            del self._members[evicted]
            self._members[key] = rank
            heapq.heappush(self._heap, (-rank, key))

    def __len__(self) -> int:
        """Number of retained items (<= k)."""
        return len(self._members)

    def distinct_count(self) -> float:
        """Estimated number of distinct items seen.

        Exact while fewer than k distinct items have arrived; thereafter
        the classic estimator ``(k - 1) / kth_smallest_rank``.
        """
        if len(self._members) < self.k:
            return float(len(self._members))
        kth_rank = -self._heap[0][0]
        return (self.k - 1) / kth_rank

    def merge_from(self, other: "BottomKSketch") -> None:
        """Union two sketches built with the same hash (same seed)."""
        if self._hash != other._hash or self.k != other.k:
            raise ValueError("can only merge bottom-k sketches with the "
                             "same k and hash function")
        for key, rank in other._members.items():
            if key in self._members:
                continue
            if len(self._members) < self.k:
                self._members[key] = rank
                heapq.heappush(self._heap, (-rank, key))
            elif rank < -self._heap[0][0]:
                _, evicted = heapq.heappop(self._heap)
                del self._members[evicted]
                self._members[key] = rank
                heapq.heappush(self._heap, (-rank, key))


class DistinctEdgeCounter:
    """Bottom-k over edge keys: distinct edges of a graph stream."""

    def __init__(self, k: int = 64, seed: Optional[int] = 0,
                 directed: bool = True):
        self.directed = directed
        self._sketch = BottomKSketch(k, seed=seed)

    def update(self, source: Label, target: Label, weight: float = 1.0) -> None:
        if not self.directed and repr(source) > repr(target):
            source, target = target, source
        self._sketch.update(f"{source}\x1f{target}")

    def ingest(self, stream) -> int:
        count = 0
        for edge in stream:
            self.update(edge.source, edge.target, edge.weight)
            count += 1
        return count

    def distinct_edges(self) -> float:
        return self._sketch.distinct_count()
