"""AMS sketch (Alon, Matias & Szegedy, STOC 1996 / JCSS 1999).

Cited by the paper as one of the foundational data-stream sketches.  The
AMS "tug-of-war" sketch estimates the second frequency moment
``F2 = sum_k f_k^2`` of a stream: each of ``d x w`` counters accumulates
``weight * s(key)`` for a four-wise independent sign function ``s``; each
counter's square is an unbiased F2 estimator, and median-of-means over
the array concentrates it.

On graph streams, F2 of the edge-frequency vector is the self-join size
of the edge multiset -- a skew measure that complements the point
estimates TCM and CountMin provide.
"""

from __future__ import annotations

import random
import statistics
from typing import List, Optional

import numpy as np

from repro.hashing.family import MERSENNE_PRIME_61
from repro.hashing.labels import Label, label_to_int


class _FourWiseHash:
    """Degree-3 polynomial hash over the Mersenne prime: 4-wise independent."""

    def __init__(self, rng: random.Random):
        self._coefficients = [rng.randrange(0, MERSENNE_PRIME_61)
                              for _ in range(4)]
        # Leading coefficient must be non-zero for full independence.
        if self._coefficients[0] == 0:
            self._coefficients[0] = 1

    def sign(self, key: int) -> int:
        """A +-1 value, 4-wise independent across keys."""
        a, b, c, d = self._coefficients
        x = key % MERSENNE_PRIME_61
        value = (((a * x + b) * x + c) * x + d) % MERSENNE_PRIME_61
        return 1 if value & 1 else -1


class AmsSketch:
    """Median-of-means AMS estimator for the second frequency moment.

    :param d: number of estimator groups (median dimension).
    :param w: estimators per group (mean dimension).
    """

    def __init__(self, d: int = 5, w: int = 16, seed: Optional[int] = 0):
        if d < 1 or w < 1:
            raise ValueError(f"d and w must be >= 1, got d={d}, w={w}")
        rng = random.Random(seed)
        self._signs: List[List[_FourWiseHash]] = [
            [_FourWiseHash(rng) for _ in range(w)] for _ in range(d)
        ]
        self._counters = np.zeros((d, w))

    @property
    def shape(self):
        return self._counters.shape

    def update(self, key: Label, weight: float = 1.0) -> None:
        """Absorb one occurrence of ``key`` (weighted)."""
        intkey = label_to_int(key)
        for row, hashes in enumerate(self._signs):
            for col, h in enumerate(hashes):
                self._counters[row, col] += weight * h.sign(intkey)

    def remove(self, key: Label, weight: float = 1.0) -> None:
        """Deletions are just negated updates (AMS is a linear sketch)."""
        self.update(key, -weight)

    def second_moment(self) -> float:
        """The F2 estimate: median over groups of mean of squares."""
        means = (self._counters ** 2).mean(axis=1)
        return float(statistics.median(means.tolist()))


class EdgeF2Sketch:
    """AMS over edge keys: the self-join size of a graph stream's edges.

    ``F2 = sum_e f_e(e)^2`` where ``f_e`` is the aggregated edge weight;
    large values indicate a skewed stream with heavy repeat edges.
    """

    def __init__(self, d: int = 5, w: int = 16, seed: Optional[int] = 0,
                 directed: bool = True):
        self.directed = directed
        self._ams = AmsSketch(d, w, seed=seed)

    def update(self, source: Label, target: Label, weight: float = 1.0) -> None:
        if not self.directed and repr(source) > repr(target):
            source, target = target, source
        self._ams.update(f"{source}\x1f{target}", weight)

    def ingest(self, stream) -> int:
        count = 0
        for edge in stream:
            self.update(edge.source, edge.target, edge.weight)
            count += 1
        return count

    def self_join_size(self) -> float:
        return self._ams.second_moment()
