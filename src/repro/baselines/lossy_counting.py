"""Lossy counting (Manku & Motwani, VLDB 2002).

"Approximate frequency counts" is the ancestor technique the paper's
Example 1 builds on and CountMin improves.  Included so the baseline
lineage in Table 3 is complete: a one-dimensional frequency summary with
deterministic error ``true f <= estimate <= true f + eps*N`` for counts.

We implement the classic bucketed algorithm over item *counts* (the
weighted generalization adds each item's weight instead of 1).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Tuple


class LossyCounter:
    """Frequency counter with at most ``O(1/epsilon * log(eps*N))`` entries.

    :param epsilon: the frequency error budget as a fraction of the stream
        length; items with true frequency below ``epsilon * N`` may be
        dropped entirely.
    """

    def __init__(self, epsilon: float):
        if not 0 < epsilon < 1:
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        self.epsilon = epsilon
        self._bucket_width = math.ceil(1.0 / epsilon)
        self._current_bucket = 1
        self._count = 0
        # item -> (frequency, max undercount delta)
        self._entries: Dict[Hashable, Tuple[float, int]] = {}

    @property
    def stream_length(self) -> int:
        return self._count

    def update(self, item: Hashable, weight: float = 1.0) -> None:
        """Observe one occurrence of ``item`` (optionally weighted)."""
        if weight < 0:
            raise ValueError(f"weights must be non-negative, got {weight}")
        self._count += 1
        if item in self._entries:
            frequency, delta = self._entries[item]
            self._entries[item] = (frequency + weight, delta)
        else:
            self._entries[item] = (weight, self._current_bucket - 1)
        if self._count % self._bucket_width == 0:
            self._prune()
            self._current_bucket += 1

    def _prune(self) -> None:
        """End-of-bucket cleanup: drop entries that cannot be frequent."""
        doomed = [item for item, (frequency, delta) in self._entries.items()
                  if frequency + delta <= self._current_bucket]
        for item in doomed:
            del self._entries[item]

    def estimate(self, item: Hashable) -> float:
        """Estimated frequency; an *under*count by at most ``eps * N``."""
        entry = self._entries.get(item)
        return entry[0] if entry is not None else 0.0

    def frequent_items(self, support: float) -> List[Tuple[Hashable, float]]:
        """Items with estimated frequency at least ``(support - eps) * N``.

        Guaranteed to contain every item whose true frequency exceeds
        ``support * N`` (no false negatives among the truly frequent).
        """
        if not 0 < support < 1:
            raise ValueError(f"support must be in (0, 1), got {support}")
        threshold = (support - self.epsilon) * self._count
        found = [(item, frequency)
                 for item, (frequency, _) in self._entries.items()
                 if frequency >= threshold]
        return sorted(found, key=lambda kv: (-kv[1], repr(kv[0])))

    def __len__(self) -> int:
        """Number of tracked entries (the space actually used)."""
        return len(self._entries)
