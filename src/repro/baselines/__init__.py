"""Baseline sketches and stores the paper compares against.

- :class:`~repro.baselines.countmin.CountMinSketch` plus its node/edge
  specializations (the paper's primary comparator).
- :class:`~repro.baselines.gsketch.GSketch` -- sample-partitioned CountMin
  (Zhao et al., PVLDB 2011), and the same partitioning idea applied to TCM
  (:class:`~repro.baselines.gsketch.PartitionedTCM`, paper Exp-1(e)).
- :mod:`~repro.baselines.sampling` -- uniform sample-based summaries.
- :mod:`~repro.baselines.lossy_counting` -- Manku-Motwani approximate
  frequency counts, the ancestor technique of Example 1.
- :mod:`~repro.baselines.adjacency` -- exact adjacency-list stores used by
  the query-time experiment (Appendix C.4).
"""

from repro.baselines.ams import AmsSketch, EdgeF2Sketch
from repro.baselines.bottomk import BottomKSketch, DistinctEdgeCounter
from repro.baselines.countmin import CountMinSketch, EdgeCountMin, NodeCountMin
from repro.baselines.countsketch import CountSketch, EdgeCountSketch
from repro.baselines.gsketch import GSketch, PartitionedTCM
from repro.baselines.spacesaving import (
    SpaceSaving,
    SpaceSavingEdges,
    SpaceSavingNodes,
)
from repro.baselines.sampling import (
    ReservoirEdgeSample,
    SampledEdgeStore,
    SampledNodeStore,
)
from repro.baselines.lossy_counting import LossyCounter
from repro.baselines.adjacency import AdjacencyListGraph, HashedAdjacencyGraph

__all__ = [
    "CountMinSketch",
    "NodeCountMin",
    "EdgeCountMin",
    "GSketch",
    "PartitionedTCM",
    "SampledEdgeStore",
    "SampledNodeStore",
    "ReservoirEdgeSample",
    "LossyCounter",
    "AdjacencyListGraph",
    "HashedAdjacencyGraph",
    "AmsSketch",
    "EdgeF2Sketch",
    "CountSketch",
    "EdgeCountSketch",
    "BottomKSketch",
    "DistinctEdgeCounter",
    "SpaceSaving",
    "SpaceSavingEdges",
    "SpaceSavingNodes",
]
