"""Space-Saving (Metwally, Agrawal & El Abbadi, ICDT 2005).

The standard counter-based top-k algorithm, and the natural point of
comparison for the heavy-hitter experiments: where CountMin/TCM hash
*all* items and rank afterwards, Space-Saving maintains exactly ``k``
counters and evicts the minimum, guaranteeing

    estimate - error <= true frequency <= estimate

per tracked item and that every item with true frequency above ``N/k``
is tracked.  Deterministic, no hashing; weighted updates supported.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple


class SpaceSaving:
    """Exactly-k counters with minimum eviction.

    :param k: number of counters (space budget).
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._counts: Dict[Hashable, float] = {}
        self._errors: Dict[Hashable, float] = {}
        self._total = 0.0

    @property
    def total_weight(self) -> float:
        """Total stream weight observed."""
        return self._total

    def update(self, item: Hashable, weight: float = 1.0) -> None:
        """Observe one (weighted) occurrence."""
        if weight < 0:
            raise ValueError(f"weights must be non-negative, got {weight}")
        self._total += weight
        if item in self._counts:
            self._counts[item] += weight
            return
        if len(self._counts) < self.k:
            self._counts[item] = weight
            self._errors[item] = 0.0
            return
        victim = min(self._counts, key=lambda i: (self._counts[i], repr(i)))
        floor = self._counts.pop(victim)
        self._errors.pop(victim)
        # The newcomer inherits the evicted count as its maximum error.
        self._counts[item] = floor + weight
        self._errors[item] = floor

    def estimate(self, item: Hashable) -> float:
        """Estimated frequency (an over-count by at most ``error_of``)."""
        return self._counts.get(item, 0.0)

    def error_of(self, item: Hashable) -> float:
        """Upper bound on the over-count of a tracked item's estimate."""
        return self._errors.get(item, 0.0)

    def guaranteed(self, item: Hashable) -> float:
        """Guaranteed lower bound on the true frequency."""
        return self._counts.get(item, 0.0) - self._errors.get(item, 0.0)

    def top(self, n: int) -> List[Tuple[Hashable, float]]:
        """Top-``n`` tracked items by estimate, heaviest first."""
        ranked = sorted(self._counts.items(),
                        key=lambda kv: (-kv[1], repr(kv[0])))
        return ranked[:n]

    def __len__(self) -> int:
        return len(self._counts)


class SpaceSavingEdges:
    """Space-Saving over graph-stream edges (top-k heavy edges)."""

    def __init__(self, k: int, directed: bool = True):
        self.directed = directed
        self._inner = SpaceSaving(k)

    def update(self, source, target, weight: float = 1.0) -> None:
        if not self.directed and repr(source) > repr(target):
            source, target = target, source
        self._inner.update((source, target), weight)

    def ingest(self, stream) -> int:
        count = 0
        for edge in stream:
            self.update(edge.source, edge.target, edge.weight)
            count += 1
        return count

    def top_edges(self, n: int) -> List[Tuple[Tuple, float]]:
        return self._inner.top(n)

    def edge_weight(self, source, target) -> float:
        if not self.directed and repr(source) > repr(target):
            source, target = target, source
        return self._inner.estimate((source, target))


class SpaceSavingNodes:
    """Space-Saving over node flows (top-k heavy nodes)."""

    def __init__(self, k: int, direction: str = "in"):
        if direction not in ("in", "out", "both"):
            raise ValueError(f"direction must be 'in'/'out'/'both', got {direction!r}")
        self.direction = direction
        self._inner = SpaceSaving(k)

    def update(self, source, target, weight: float = 1.0) -> None:
        if self.direction in ("in", "both"):
            self._inner.update(target, weight)
        if self.direction in ("out", "both"):
            self._inner.update(source, weight)

    def ingest(self, stream) -> int:
        count = 0
        for edge in stream:
            self.update(edge.source, edge.target, edge.weight)
            count += 1
        return count

    def top_nodes(self, n: int) -> List[Tuple[Hashable, float]]:
        return self._inner.top(n)

    def flow(self, node) -> float:
        return self._inner.estimate(node)
