"""gSketch: sample-partitioned sketches (Zhao, Aggarwal & Wang, PVLDB 2011).

gSketch improves CountMin for graph streams by assuming a *data sample* is
available before the stream runs.  The sample estimates per-edge
frequencies; edges are partitioned so that similar-frequency edges share a
partition, and each partition gets its own sketch over a slice of the
space.  High-frequency edges then never collide with low-frequency ones,
which is where most relative error comes from (paper Fig. 10).

The paper's Exp-1(e) shows the same trick bolts onto TCM unchanged;
:class:`PartitionedTCM` is that combination ("TCM (edge sample)" in
Tables 2/4/5).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.baselines.countmin import EdgeCountMin
from repro.core.aggregation import Aggregation
from repro.core.tcm import TCM
from repro.hashing.labels import Label
from repro.streams.model import GraphStream


def partition_edges_by_sample(sample: GraphStream, partitions: int
                              ) -> Tuple[Dict[Tuple[Label, Label], int], int]:
    """Derive the edge -> partition routing table from a data sample.

    Edges observed in the sample are sorted by sampled aggregate weight
    and cut into ``partitions`` equal-count groups (group 0 = lightest).
    Returns the routing table and the default partition for unseen edges
    (the lightest group: unseen edges are overwhelmingly low-frequency in
    Zipfian streams).
    """
    if partitions < 1:
        raise ValueError(f"partitions must be >= 1, got {partitions}")
    weighted = sorted(sample.distinct_edges,
                      key=lambda e: (sample.edge_weight(*e), repr(e)))
    table: Dict[Tuple[Label, Label], int] = {}
    if weighted:
        per_group = max(1, math.ceil(len(weighted) / partitions))
        for index, edge in enumerate(weighted):
            table[edge] = min(index // per_group, partitions - 1)
    return table, 0


def partition_space_allocation(sample: GraphStream, partitions: int,
                               total_cells: int,
                               sample_fraction: float) -> List[int]:
    """Split the space budget across partitions proportionally to their
    expected *distinct-edge* load.

    gSketch's win comes from heavy edges not sharing buckets with light
    ones; it evaporates if the light partition is congested.  Each
    partition starts with its share of sampled distinct edges; the
    default partition (0) additionally absorbs every edge the sample did
    not see.  The unseen count is extrapolated from the sample's
    coverage: ``s`` distinct edges in a ``f`` fraction of the stream
    suggests roughly ``s/f`` distinct edges overall, i.e. ``s*(1/f - 1)``
    unseen.  Every partition is guaranteed at least one cell.
    """
    if not 0 < sample_fraction <= 1:
        raise ValueError(
            f"sample_fraction must be in (0, 1], got {sample_fraction}")
    seen = len(sample.distinct_edges)
    per_group = seen / partitions if partitions else 0.0
    unseen_estimate = seen * (1.0 / sample_fraction - 1.0)
    loads = [per_group + (unseen_estimate if p == 0 else 0.0)
             for p in range(partitions)]
    total_load = sum(loads) or 1.0
    widths = [max(1, int(total_cells * load / total_load)) for load in loads]
    return widths


class GSketch:
    """Sample-partitioned edge CountMin.

    :param sample: a prefix/sample of the stream used to build the
        partition routing (the paper's "assumes data samples are given").
    :param partitions: number of frequency groups (the paper uses 10).
    :param total_cells: space budget *per hash row*, split evenly across
        partition sketches so the comparison with a same-space CountMin or
        TCM is fair.
    """

    def __init__(self, sample: GraphStream, partitions: int, d: int,
                 total_cells: int, seed: Optional[int] = 0,
                 directed: bool = True, sample_fraction: float = 0.1):
        if total_cells < partitions:
            raise ValueError(
                f"total_cells={total_cells} cannot be split into "
                f"{partitions} partitions")
        self.directed = directed
        self._partitions = partitions
        self._routing, self._default = partition_edges_by_sample(sample, partitions)
        widths = partition_space_allocation(sample, partitions, total_cells,
                                            sample_fraction)
        self._sketches: List[EdgeCountMin] = [
            EdgeCountMin(d, widths[p],
                         seed=(None if seed is None else seed + p),
                         directed=directed)
            for p in range(partitions)
        ]

    @property
    def size_in_cells(self) -> int:
        return sum(s.size_in_cells for s in self._sketches)

    def _route(self, source: Label, target: Label) -> int:
        if not self.directed and repr(source) > repr(target):
            source, target = target, source
        return self._routing.get((source, target), self._default)

    def update(self, source: Label, target: Label, weight: float = 1.0) -> None:
        self._sketches[self._route(source, target)].update(source, target, weight)

    def remove(self, source: Label, target: Label, weight: float = 1.0) -> None:
        self._sketches[self._route(source, target)].remove(source, target, weight)

    def edge_weight(self, source: Label, target: Label) -> float:
        return self._sketches[self._route(source, target)].edge_weight(source, target)

    def subgraph_weight(self, edges: Iterable) -> float:
        total = 0.0
        for source, target in edges:
            weight = self.edge_weight(source, target)
            if weight == 0.0:
                return 0.0
            total += weight
        return total

    def ingest(self, stream) -> int:
        count = 0
        for edge in stream:
            self.update(edge.source, edge.target, edge.weight)
            count += 1
        return count


class PartitionedTCM:
    """TCM with gSketch-style sample partitioning ("TCM (edge sample)").

    Each frequency group gets its own small TCM over a slice of the space;
    routing is identical to :class:`GSketch`.  Exp-1(e) shows this matches
    gSketch's accuracy while keeping TCM's extra query power within each
    partition.
    """

    def __init__(self, sample: GraphStream, partitions: int, d: int,
                 total_cells: int, seed: Optional[int] = 0,
                 directed: bool = True, sample_fraction: float = 0.1,
                 aggregation: Aggregation = Aggregation.SUM):
        if total_cells < partitions:
            raise ValueError(
                f"total_cells={total_cells} cannot be split into "
                f"{partitions} partitions")
        self.directed = directed
        self._routing, self._default = partition_edges_by_sample(sample, partitions)
        cell_allocation = partition_space_allocation(
            sample, partitions, total_cells, sample_fraction)
        self._tcms: List[TCM] = [
            TCM.from_space(cell_allocation[p], d,
                           seed=(None if seed is None else seed + p),
                           directed=directed, aggregation=aggregation)
            for p in range(partitions)
        ]

    @property
    def size_in_cells(self) -> int:
        return sum(t.size_in_cells for t in self._tcms)

    @property
    def partitions(self) -> Sequence[TCM]:
        return tuple(self._tcms)

    def _route(self, source: Label, target: Label) -> int:
        if not self.directed and repr(source) > repr(target):
            source, target = target, source
        return self._routing.get((source, target), self._default)

    def update(self, source: Label, target: Label, weight: float = 1.0) -> None:
        self._tcms[self._route(source, target)].update(source, target, weight)

    def remove(self, source: Label, target: Label, weight: float = 1.0) -> None:
        self._tcms[self._route(source, target)].remove(source, target, weight)

    def edge_weight(self, source: Label, target: Label) -> float:
        return self._tcms[self._route(source, target)].edge_weight(source, target)

    def ingest(self, stream) -> int:
        count = 0
        for edge in stream:
            self.update(edge.source, edge.target, edge.weight)
            count += 1
        return count
