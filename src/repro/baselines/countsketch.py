"""CountSketch (Charikar, Chen & Farach-Colton, ICALP 2002).

The sign-hashed sibling of CountMin: each update adds ``s(key) * weight``
to one bucket per row (``s`` a 4-wise independent sign), and the estimate
is the *median* of the signed bucket reads.  Unlike CountMin/TCM, the
estimator is **unbiased** -- errors are two-sided instead of one-sided
over-counts -- which makes it the natural baseline for the bias/variance
trade-off discussion around Theorem 1, and it tolerates negative updates
natively (turnstile streams).
"""

from __future__ import annotations

import random
import statistics
from typing import Optional

import numpy as np

from repro.baselines.ams import _FourWiseHash
from repro.hashing.family import HashFamily
from repro.hashing.labels import Label, label_to_int


class CountSketch:
    """Median-of-signed-buckets frequency estimator.

    :param d: number of rows (use odd values so the median is a cell).
    :param width: buckets per row.
    """

    def __init__(self, d: int = 5, width: int = 256,
                 seed: Optional[int] = 0):
        if d < 1 or width < 1:
            raise ValueError(f"d and width must be >= 1, got d={d}, "
                             f"width={width}")
        self._buckets = HashFamily.uniform(d, width, seed=seed)
        rng = random.Random(None if seed is None else seed + 7)
        self._signs = [_FourWiseHash(rng) for _ in range(d)]
        self._table = np.zeros((d, width))

    @property
    def d(self) -> int:
        return self._table.shape[0]

    @property
    def width(self) -> int:
        return self._table.shape[1]

    @property
    def size_in_cells(self) -> int:
        return self._table.size

    def update(self, key: Label, weight: float = 1.0) -> None:
        """Add ``weight`` (may be negative: turnstile model)."""
        intkey = label_to_int(key)
        for row, (bucket_hash, sign_hash) in enumerate(
                zip(self._buckets, self._signs)):
            column = bucket_hash.hash_int(intkey)
            self._table[row, column] += weight * sign_hash.sign(intkey)

    def remove(self, key: Label, weight: float = 1.0) -> None:
        self.update(key, -weight)

    def estimate(self, key: Label) -> float:
        """Median of the signed bucket reads; unbiased, two-sided error."""
        intkey = label_to_int(key)
        reads = []
        for row, (bucket_hash, sign_hash) in enumerate(
                zip(self._buckets, self._signs)):
            column = bucket_hash.hash_int(intkey)
            reads.append(self._table[row, column] * sign_hash.sign(intkey))
        return float(statistics.median(reads))

    def clear(self) -> None:
        self._table.fill(0)


class EdgeCountSketch:
    """CountSketch keyed on concatenated edge labels.

    The unbiased counterpart of
    :class:`~repro.baselines.countmin.EdgeCountMin`; same query surface
    (edge weights only), opposite error profile.
    """

    def __init__(self, d: int = 5, width: int = 256,
                 seed: Optional[int] = 0, directed: bool = True):
        self.directed = directed
        self._cs = CountSketch(d, width, seed=seed)

    @property
    def size_in_cells(self) -> int:
        return self._cs.size_in_cells

    def _key(self, source: Label, target: Label) -> str:
        if not self.directed and repr(source) > repr(target):
            source, target = target, source
        return f"{source}\x1f{target}"

    def update(self, source: Label, target: Label, weight: float = 1.0) -> None:
        self._cs.update(self._key(source, target), weight)

    def remove(self, source: Label, target: Label, weight: float = 1.0) -> None:
        self._cs.remove(self._key(source, target), weight)

    def edge_weight(self, source: Label, target: Label) -> float:
        return self._cs.estimate(self._key(source, target))

    def ingest(self, stream) -> int:
        count = 0
        for edge in stream:
            self.update(edge.source, edge.target, edge.weight)
            count += 1
        return count
