"""Exact adjacency-list stores for the query-time experiment (App. C.4).

The paper argues the raw graph stream can only be stored as an adjacency
list (node count unknown a priori, memory limits), which makes point
queries expensive:

- :class:`AdjacencyListGraph` -- the plain list-of-(node, neighbours)
  layout: locating a node is a linear scan, so an edge query costs
  O(|V| + deg).
- :class:`HashedAdjacencyGraph` -- the improved variant with a hash index
  on nodes; an edge query still scans one neighbour list, O(deg).

Appendix C.4 shows sketch lookups beat both by orders of magnitude; these
classes exist so our ``bench_query_time`` reproduces that three-way race.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.hashing.labels import Label


class AdjacencyListGraph:
    """Plain adjacency list with linear node lookup (the paper's worst case)."""

    def __init__(self, directed: bool = True):
        self.directed = directed
        self._nodes: List[Label] = []
        self._neighbours: List[List[Tuple[Label, float]]] = []

    def _locate(self, node: Label) -> int:
        """Linear scan for the node's slot; -1 when absent."""
        for index, existing in enumerate(self._nodes):
            if existing == node:
                return index
        return -1

    def update(self, source: Label, target: Label, weight: float = 1.0) -> None:
        self._insert(source, target, weight)
        if not self.directed:
            self._insert(target, source, weight)

    def _insert(self, source: Label, target: Label, weight: float) -> None:
        index = self._locate(source)
        if index < 0:
            self._nodes.append(source)
            self._neighbours.append([])
            index = len(self._nodes) - 1
        bucket = self._neighbours[index]
        for position, (neighbour, existing) in enumerate(bucket):
            if neighbour == target:
                bucket[position] = (neighbour, existing + weight)
                return
        bucket.append((target, weight))

    def edge_weight(self, source: Label, target: Label) -> float:
        index = self._locate(source)
        if index < 0:
            return 0.0
        for neighbour, weight in self._neighbours[index]:
            if neighbour == target:
                return weight
        return 0.0

    def ingest(self, stream) -> int:
        count = 0
        for edge in stream:
            self.update(edge.source, edge.target, edge.weight)
            count += 1
        return count

    def __len__(self) -> int:
        return len(self._nodes)


class HashedAdjacencyGraph:
    """Adjacency list with a hash index on nodes (the paper's "hashed list").

    Node lookup is O(1); the neighbour list is still scanned per query,
    so edge queries cost O(deg) -- an order of magnitude slower than a
    sketch's O(d) matrix probes on high-degree graphs.
    """

    def __init__(self, directed: bool = True):
        self.directed = directed
        self._index: Dict[Label, List[Tuple[Label, float]]] = {}

    def update(self, source: Label, target: Label, weight: float = 1.0) -> None:
        self._insert(source, target, weight)
        if not self.directed:
            self._insert(target, source, weight)

    def _insert(self, source: Label, target: Label, weight: float) -> None:
        bucket = self._index.setdefault(source, [])
        for position, (neighbour, existing) in enumerate(bucket):
            if neighbour == target:
                bucket[position] = (neighbour, existing + weight)
                return
        bucket.append((target, weight))

    def edge_weight(self, source: Label, target: Label) -> float:
        for neighbour, weight in self._index.get(source, ()):
            if neighbour == target:
                return weight
        return 0.0

    def ingest(self, stream) -> int:
        count = 0
        for edge in stream:
            self.update(edge.source, edge.target, edge.weight)
            count += 1
        return count

    def __len__(self) -> int:
        return len(self._index)
