"""CountMin sketch (Cormode & Muthukrishnan, J. Algorithms 2005).

The paper's main comparator and, per its Section 5.1.3, a degenerate TCM:
a CountMin row is a TCM matrix whose second hash function has a single
bucket.  We implement it independently here (a ``d x w`` counter array
with one pairwise hash per row) so the comparison is honest, plus the two
graph-stream specializations the paper describes in Example 1:

- :class:`NodeCountMin` -- node sketch: hashes node labels, answers flow
  (point) queries for one direction.
- :class:`EdgeCountMin` -- edge sketch: hashes *concatenated* endpoint
  labels, answers edge-weight queries.  The concatenation cost is what
  Exp-5 charges CountMin for, so we expose the concatenated key path
  explicitly.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.core import kernels as _kernels
from repro.hashing.family import HashFamily
from repro.hashing.labels import Label, label_to_int


class CountMinSketch:
    """Plain CountMin over hashable keys.

    :param d: number of hash rows.
    :param width: buckets per row.
    :param seed: seeds the pairwise-independent hash family.
    """

    def __init__(self, d: int, width: int, seed: Optional[int] = 0):
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        self._family = HashFamily.uniform(d, width, seed=seed)
        self._table = np.zeros((d, width), dtype=np.float64)

    @property
    def d(self) -> int:
        return self._table.shape[0]

    @property
    def width(self) -> int:
        return self._table.shape[1]

    @property
    def size_in_cells(self) -> int:
        return self._table.size

    def update(self, key: Label, weight: float = 1.0) -> None:
        """Add ``weight`` to the key's counter in every row -- O(d)."""
        if weight < 0:
            raise ValueError(f"weights must be non-negative, got {weight}")
        intkey = label_to_int(key)
        for row, h in enumerate(self._family):
            self._table[row, h.hash_int(intkey)] += weight

    def remove(self, key: Label, weight: float = 1.0) -> None:
        """Subtract ``weight`` (deletion / window expiry)."""
        intkey = label_to_int(key)
        for row, h in enumerate(self._family):
            self._table[row, h.hash_int(intkey)] -= weight

    def estimate(self, key: Label) -> float:
        """The CountMin estimate: minimum counter across rows."""
        intkey = label_to_int(key)
        return float(min(self._table[row, h.hash_int(intkey)]
                         for row, h in enumerate(self._family)))

    def update_many(self, keys: np.ndarray, weights: np.ndarray) -> None:
        """Vectorized bulk update of pre-converted integer keys.

        Routed through the active scatter kernel (see
        :mod:`repro.core.kernels`): each row takes one buffered
        bincount scatter, bit-identical to per-element :meth:`update`,
        and duplicate keys are hashed once per chunk rather than once
        per row.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        weights = np.asarray(weights, dtype=np.float64)
        backend = _kernels.get_backend()
        if self.d > 1:
            unique_keys, inverse = _kernels.dedup_keys(keys)
        else:
            unique_keys, inverse = keys, None
        for row, h in enumerate(self._family):
            idx = h.hash_many(unique_keys)
            if inverse is not None:
                idx = idx[inverse]
            backend.scatter_add_1d(self._table[row], idx, weights)

    def clear(self) -> None:
        self._table.fill(0)


def concat_edge_key(source: Label, target: Label) -> str:
    """The string concatenation an edge-CountMin must perform per element.

    This is deliberately a real string operation (not a tuple hash): the
    paper's Exp-5 measures exactly this cost against TCM, which hashes the
    two labels separately and never concatenates.
    """
    return f"{source}\x1f{target}"


class EdgeCountMin:
    """CountMin keyed on concatenated edge labels (Example 1's edge sketch).

    Supports edge-weight and explicit-edge aggregate-subgraph queries, and
    nothing else -- per the paper's Table 3 row for "CountMin (edge) or
    gSketch".
    """

    def __init__(self, d: int, width: int, seed: Optional[int] = 0,
                 directed: bool = True):
        self.directed = directed
        self._cm = CountMinSketch(d, width, seed=seed)

    @property
    def size_in_cells(self) -> int:
        return self._cm.size_in_cells

    def _key(self, source: Label, target: Label) -> str:
        if not self.directed and repr(source) > repr(target):
            source, target = target, source
        return concat_edge_key(source, target)

    def update(self, source: Label, target: Label, weight: float = 1.0) -> None:
        self._cm.update(self._key(source, target), weight)

    def remove(self, source: Label, target: Label, weight: float = 1.0) -> None:
        self._cm.remove(self._key(source, target), weight)

    def edge_weight(self, source: Label, target: Label) -> float:
        return self._cm.estimate(self._key(source, target))

    def subgraph_weight(self, edges: Iterable) -> float:
        """Aggregate subgraph weight for explicit edges (gSketch semantics)."""
        total = 0.0
        for source, target in edges:
            weight = self.edge_weight(source, target)
            if weight == 0.0:
                return 0.0
            total += weight
        return total

    def ingest(self, stream) -> int:
        count = 0
        for edge in stream:
            self.update(edge.source, edge.target, edge.weight)
            count += 1
        return count


class NodeCountMin:
    """CountMin keyed on node labels (Example 1's node sketch).

    One instance answers flow queries for a single direction; supporting
    both in- and out-flow requires two instances (twice the space), which
    is exactly the set-of-problems disadvantage Exp-1(f) measures.
    """

    def __init__(self, d: int, width: int, seed: Optional[int] = 0,
                 direction: str = "in"):
        if direction not in ("in", "out", "both"):
            raise ValueError(f"direction must be 'in'/'out'/'both', got {direction!r}")
        self.direction = direction
        self._cm = CountMinSketch(d, width, seed=seed)

    @property
    def size_in_cells(self) -> int:
        return self._cm.size_in_cells

    def update(self, source: Label, target: Label, weight: float = 1.0) -> None:
        if self.direction in ("in", "both"):
            self._cm.update(target, weight)
        if self.direction in ("out", "both"):
            self._cm.update(source, weight)

    def remove(self, source: Label, target: Label, weight: float = 1.0) -> None:
        if self.direction in ("in", "both"):
            self._cm.remove(target, weight)
        if self.direction in ("out", "both"):
            self._cm.remove(source, weight)

    def flow(self, node: Label) -> float:
        """Estimated flow of ``node`` in this sketch's direction."""
        return self._cm.estimate(node)

    def ingest(self, stream) -> int:
        count = 0
        for edge in stream:
            self.update(edge.source, edge.target, edge.weight)
            count += 1
        return count
