"""Sample-based stream summaries.

The second family of baselines in the paper's Section 6.1.2: keep a
uniform Bernoulli sample of stream elements and scale aggregates by the
inverse sampling rate.  Sample-based estimates *undercount* (a light edge
may never be sampled), the opposite bias of CountMin/TCM; the paper uses a
50% rate and shows samples lose to sketches on heavy-hitter accuracy
(Fig. 11).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.hashing.labels import Label


class SampledEdgeStore:
    """Uniform edge-sampled summary answering edge and heavy-edge queries.

    :param rate: Bernoulli inclusion probability per stream element.
    """

    def __init__(self, rate: float, seed: Optional[int] = 0,
                 directed: bool = True):
        if not 0 < rate <= 1:
            raise ValueError(f"rate must be in (0, 1], got {rate}")
        self.rate = rate
        self.directed = directed
        self._rng = random.Random(seed)
        self._weights: Dict[Tuple[Label, Label], float] = {}

    def _key(self, source: Label, target: Label) -> Tuple[Label, Label]:
        if not self.directed and repr(source) > repr(target):
            return (target, source)
        return (source, target)

    def update(self, source: Label, target: Label, weight: float = 1.0) -> None:
        if self._rng.random() >= self.rate:
            return
        key = self._key(source, target)
        self._weights[key] = self._weights.get(key, 0.0) + weight

    def edge_weight(self, source: Label, target: Label) -> float:
        """Horvitz-Thompson style estimate: sampled weight / rate."""
        return self._weights.get(self._key(source, target), 0.0) / self.rate

    def top_edges(self, k: int) -> List[Tuple[Tuple[Label, Label], float]]:
        ranked = sorted(self._weights.items(),
                        key=lambda kv: (-kv[1], repr(kv[0])))
        return [(edge, weight / self.rate) for edge, weight in ranked[:k]]

    def ingest(self, stream) -> int:
        count = 0
        for edge in stream:
            self.update(edge.source, edge.target, edge.weight)
            count += 1
        return count

    def __len__(self) -> int:
        """Number of distinct sampled edges currently stored."""
        return len(self._weights)


class ReservoirEdgeSample:
    """Space-bounded uniform sample: a classic reservoir of stream elements.

    Where :class:`SampledEdgeStore` keeps a *fraction* of the stream (its
    footprint grows with the stream), the reservoir keeps a fixed number
    of elements -- the honest same-space comparison against a sketch with
    the same cell budget.  Estimates are Horvitz-Thompson scaled by
    ``seen / capacity``.
    """

    def __init__(self, capacity: int, seed: Optional[int] = 0,
                 directed: bool = True):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.directed = directed
        self._rng = random.Random(seed)
        self._seen = 0
        self._reservoir: List[Tuple[Label, Label, float]] = []

    def _key(self, source: Label, target: Label) -> Tuple[Label, Label]:
        if not self.directed and repr(source) > repr(target):
            return (target, source)
        return (source, target)

    def update(self, source: Label, target: Label, weight: float = 1.0) -> None:
        """Algorithm R: keep each of the first n elements w.p. capacity/n."""
        self._seen += 1
        element = (source, target, weight)
        if len(self._reservoir) < self.capacity:
            self._reservoir.append(element)
            return
        slot = self._rng.randrange(self._seen)
        if slot < self.capacity:
            self._reservoir[slot] = element

    @property
    def scale(self) -> float:
        """Inverse inclusion probability for Horvitz-Thompson estimates."""
        kept = min(self._seen, self.capacity)
        return self._seen / kept if kept else 1.0

    def _aggregates(self) -> Dict[Tuple[Label, Label], float]:
        weights: Dict[Tuple[Label, Label], float] = {}
        for source, target, weight in self._reservoir:
            key = self._key(source, target)
            weights[key] = weights.get(key, 0.0) + weight
        return weights

    def edge_weight(self, source: Label, target: Label) -> float:
        return self._aggregates().get(self._key(source, target), 0.0) * self.scale

    def top_edges(self, k: int) -> List[Tuple[Tuple[Label, Label], float]]:
        ranked = sorted(self._aggregates().items(),
                        key=lambda kv: (-kv[1], repr(kv[0])))
        return [(edge, weight * self.scale) for edge, weight in ranked[:k]]

    def node_flows(self, direction: str = "in") -> Dict[Label, float]:
        """Scaled node-flow aggregates from the sampled elements."""
        flows: Dict[Label, float] = {}
        for source, target, weight in self._reservoir:
            if direction in ("in", "both"):
                flows[target] = flows.get(target, 0.0) + weight
            if direction in ("out", "both"):
                flows[source] = flows.get(source, 0.0) + weight
        return {node: w * self.scale for node, w in flows.items()}

    def top_nodes(self, k: int, direction: str = "in") -> List[Tuple[Label, float]]:
        ranked = sorted(self.node_flows(direction).items(),
                        key=lambda kv: (-kv[1], repr(kv[0])))
        return ranked[:k]

    def ingest(self, stream) -> int:
        count = 0
        for edge in stream:
            self.update(edge.source, edge.target, edge.weight)
            count += 1
        return count

    def __len__(self) -> int:
        return len(self._reservoir)


class SampledNodeStore:
    """Uniform node-flow sample answering flow and heavy-node queries."""

    def __init__(self, rate: float, seed: Optional[int] = 0,
                 direction: str = "in"):
        if not 0 < rate <= 1:
            raise ValueError(f"rate must be in (0, 1], got {rate}")
        if direction not in ("in", "out", "both"):
            raise ValueError(f"direction must be 'in'/'out'/'both', got {direction!r}")
        self.rate = rate
        self.direction = direction
        self._rng = random.Random(seed)
        self._flows: Dict[Label, float] = {}

    def update(self, source: Label, target: Label, weight: float = 1.0) -> None:
        if self._rng.random() >= self.rate:
            return
        if self.direction in ("in", "both"):
            self._flows[target] = self._flows.get(target, 0.0) + weight
        if self.direction in ("out", "both"):
            self._flows[source] = self._flows.get(source, 0.0) + weight

    def flow(self, node: Label) -> float:
        return self._flows.get(node, 0.0) / self.rate

    def top_nodes(self, k: int) -> List[Tuple[Label, float]]:
        ranked = sorted(self._flows.items(),
                        key=lambda kv: (-kv[1], repr(kv[0])))
        return [(node, weight / self.rate) for node, weight in ranked[:k]]

    def ingest(self, stream) -> int:
        count = 0
        for edge in stream:
            self.update(edge.source, edge.target, edge.weight)
            count += 1
        return count
