"""repro: TCM graph-stream summarization (SIGMOD 2016 reproduction).

Quickstart::

    from repro import TCM, GraphStream

    stream = GraphStream(directed=True)
    stream.add("a", "b", 1.0)
    stream.add("b", "d", 1.0)

    tcm = TCM.from_stream(stream, d=4, width=64, seed=7)
    tcm.edge_weight("a", "b")     # ~1.0
    tcm.out_flow("a")             # ~1.0
    tcm.reachable("a", "d")       # True

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every reproduced table and figure.
"""

from repro.core import (
    TCM,
    Aggregation,
    BoundWildcard,
    ConditionalHeavyHitterMonitor,
    GraphSketch,
    HeavyEdgeMonitor,
    HeavyNodeMonitor,
    SubgraphQuery,
    WILDCARD,
    SketchFilteredStore,
    SnapshotRing,
    TensorSketch,
    TimeDecayedTCM,
    Wildcard,
    heavy_triangle_connections,
    load_tcm,
    save_tcm,
    sketch_distance,
    top_changed_cells,
    top_changed_edges,
)
from repro.streams import (
    GraphStream,
    RotatingWindowTCM,
    SlidingWindow,
    StreamEdge,
)

__version__ = "1.0.0"

__all__ = [
    "TCM",
    "GraphSketch",
    "Aggregation",
    "GraphStream",
    "StreamEdge",
    "SlidingWindow",
    "RotatingWindowTCM",
    "SubgraphQuery",
    "Wildcard",
    "BoundWildcard",
    "WILDCARD",
    "HeavyEdgeMonitor",
    "HeavyNodeMonitor",
    "ConditionalHeavyHitterMonitor",
    "heavy_triangle_connections",
    "save_tcm",
    "load_tcm",
    "TensorSketch",
    "SnapshotRing",
    "SketchFilteredStore",
    "TimeDecayedTCM",
    "sketch_distance",
    "top_changed_cells",
    "top_changed_edges",
    "__version__",
]
