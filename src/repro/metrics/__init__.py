"""Effectiveness metrics from the paper's Section 6.1.3 and Appendix C.3."""

from repro.metrics.error import (
    average_relative_error,
    errors_by_segment,
    relative_error,
)
from repro.metrics.topk import intersection_accuracy, ndcg, topk_items

__all__ = [
    "relative_error",
    "average_relative_error",
    "errors_by_segment",
    "intersection_accuracy",
    "ndcg",
    "topk_items",
]
