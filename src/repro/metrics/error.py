"""Relative-error metrics (paper Section 6.1.3, after gSketch).

For a query ``Q`` with exact answer ``f(Q)`` and estimate ``f'(Q)``::

    er(Q) = (f'(Q) - f(Q)) / f(Q) = f'(Q)/f(Q) - 1

and the average relative error of a workload is the mean of ``er`` over
its queries.  Over-counting sketches (TCM, CountMin) give ``er >= 0``;
sample-based summaries can give ``er`` as low as -1.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, TypeVar

Query = TypeVar("Query")


def relative_error(estimate: float, exact: float) -> float:
    """``er(Q)`` for one query.

    :raises ZeroDivisionError: when ``exact`` is 0 -- the measure is
        undefined there; workloads must query existing edges (the paper
        evaluates over the distinct edges actually in the stream).
    """
    if exact == 0:
        raise ZeroDivisionError(
            "relative error is undefined for a zero exact answer")
    return estimate / exact - 1.0


def average_relative_error(queries: Iterable[Query],
                           exact: Callable[[Query], float],
                           estimate: Callable[[Query], float]) -> float:
    """Mean relative error over a workload of queries.

    Queries whose exact answer is 0 are skipped (they have no defined
    relative error); an all-zero workload raises ``ValueError`` rather
    than silently reporting a perfect score.
    """
    total = 0.0
    counted = 0
    for query in queries:
        truth = exact(query)
        if truth == 0:
            continue
        total += relative_error(estimate(query), truth)
        counted += 1
    if counted == 0:
        raise ValueError("no queries with a non-zero exact answer")
    return total / counted


def errors_by_segment(ranked_queries: Sequence[Query], segments: int,
                      exact: Callable[[Query], float],
                      estimate: Callable[[Query], float]) -> list:
    """ARE per equal-size segment of a pre-ranked workload (Fig. 10).

    ``ranked_queries`` must be sorted ascending by exact weight; segment 0
    is the lightest decile when ``segments=10``.
    """
    if segments < 1:
        raise ValueError(f"segments must be >= 1, got {segments}")
    n = len(ranked_queries)
    if n == 0:
        raise ValueError("no queries supplied")
    bounds = [round(i * n / segments) for i in range(segments + 1)]
    result = []
    for i in range(segments):
        chunk = ranked_queries[bounds[i]:bounds[i + 1]]
        if not chunk:
            result.append(float("nan"))
            continue
        result.append(average_relative_error(chunk, exact, estimate))
    return result
