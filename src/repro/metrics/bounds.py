"""Analytic error-bound calculators (paper Appendix A).

Theorem 1 gives the CountMin-style guarantee for TCM edge queries: with
``d = ceil(ln(1/delta))`` hash functions and width ``w = ceil(e/eps)``,

    fe_hat <= fe + eps * n    with probability >= 1 - delta

(where ``n`` is total stream weight).  These helpers convert between the
(eps, delta) accuracy target and the (d, w) sketch configuration, and
predict expected errors for a given configuration -- the sizing arithmetic
an operator runs before deploying a summary.
"""

from __future__ import annotations

import math
from typing import Tuple


def parameters_for_guarantee(epsilon: float, delta: float) -> Tuple[int, int]:
    """The ``(d, w)`` achieving the (eps, delta) edge-query guarantee.

    >>> parameters_for_guarantee(0.01, 0.05)
    (3, 272)
    """
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    d = max(1, math.ceil(math.log(1.0 / delta)))
    w = max(1, math.ceil(math.e / epsilon))
    return d, w


def guarantee_for_parameters(d: int, w: int) -> Tuple[float, float]:
    """The ``(epsilon, delta)`` a given ``(d, w)`` configuration achieves.

    Inverse of :func:`parameters_for_guarantee`.
    """
    if d < 1 or w < 1:
        raise ValueError(f"d and w must be >= 1, got d={d}, w={w}")
    epsilon = math.e / w
    delta = math.exp(-d)
    return epsilon, delta


def expected_edge_error(total_weight: float, w: int) -> float:
    """Expected single-sketch edge over-count: ``n / w^2``.

    Each colliding edge pair meets with probability ``1/w^2`` under
    pairwise independence, so the expected foreign mass in a cell is the
    total remaining stream weight divided by the cell count.
    """
    if w < 1:
        raise ValueError(f"w must be >= 1, got {w}")
    if total_weight < 0:
        raise ValueError("total_weight must be non-negative")
    return total_weight / (w * w)


def expected_flow_error(total_weight: float, w: int) -> float:
    """Expected single-sketch node-flow over-count: ``n / w``.

    A flow estimate sums one whole row/column of ``w`` cells, so its
    noise floor is ``w`` times the per-cell expectation -- the reason
    heavy-node detection needs node flows above ``n/w`` (discussed in
    EXPERIMENTS.md).
    """
    if w < 1:
        raise ValueError(f"w must be >= 1, got {w}")
    if total_weight < 0:
        raise ValueError("total_weight must be non-negative")
    return total_weight / w


def space_in_cells(epsilon: float, delta: float) -> int:
    """Total cells a TCM needs for the (eps, delta) guarantee: d * w^2."""
    d, w = parameters_for_guarantee(epsilon, delta)
    return d * w * w
