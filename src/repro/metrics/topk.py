"""Top-k ranking quality metrics (Section 6.1.3 and Appendix C.3).

- :func:`intersection_accuracy`: ``|X ∩ Y| / k`` between an algorithm's
  top-k set ``X`` and the ground-truth top-k ``Y`` (Fagin et al.).
- :func:`ndcg`: normalized discounted cumulative gain of the estimated
  ranking against true relevance scores (Järvelin & Kekäläinen).
"""

from __future__ import annotations

import math
from typing import Callable, Hashable, Iterable, Mapping, Sequence


def intersection_accuracy(estimated: Iterable[Hashable],
                          truth: Iterable[Hashable],
                          k: int) -> float:
    """``|top-k(estimated) ∩ top-k(truth)| / k`` in [0, 1]."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    est_set = set(list(estimated)[:k])
    true_set = set(list(truth)[:k])
    return len(est_set & true_set) / k


def dcg(gains: Sequence[float]) -> float:
    """Discounted cumulative gain with log2 position discounting."""
    return sum(gain / math.log2(position + 2)
               for position, gain in enumerate(gains))


def ndcg(estimated_ranking: Sequence[Hashable],
         true_scores: Mapping[Hashable, float],
         k: int) -> float:
    """NDCG@k of a ranking against true relevance scores.

    Items absent from ``true_scores`` contribute zero gain.  The ideal
    ranking is the true scores sorted descending.  Returns 1.0 for a
    perfect ranking; 0 when nothing relevant was retrieved.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    gains = [true_scores.get(item, 0.0) for item in estimated_ranking[:k]]
    ideal = sorted(true_scores.values(), reverse=True)[:k]
    ideal_dcg = dcg(ideal)
    if ideal_dcg == 0:
        return 0.0
    return dcg(gains) / ideal_dcg


def topk_items(ranked_with_scores: Iterable, k: int) -> list:
    """Project ``[(item, score), ...]`` rankings onto their items."""
    return [item for item, _ in list(ranked_with_scores)[:k]]
