"""Carter-Wegman pairwise-independent hash functions.

A family ``H = {h : U -> [0, w)}`` is pairwise independent when for distinct
keys ``x != y`` and any buckets ``k, l``::

    Pr[h(x) = k and h(y) = l] = 1 / w**2

The classic construction ``h(x) = ((a*x + b) mod p) mod w`` with ``p`` prime,
``a`` drawn uniformly from ``[1, p)`` and ``b`` from ``[0, p)`` achieves this
(up to the small bias of the final ``mod w``).  We use the Mersenne prime
``p = 2**61 - 1``, which covers 64-bit label keys after one reduction, keeps
scalar arithmetic in native Python ints, and admits an overflow-free
vectorized implementation in uint64 numpy arrays via limb splitting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.hashing.labels import Label, label_to_int

MERSENNE_PRIME_61 = (1 << 61) - 1

_P = np.uint64(MERSENNE_PRIME_61)
_LIMB_BITS = np.uint64(31)
_LIMB_MASK = np.uint64((1 << 31) - 1)


def _mod_mersenne(x: "np.ndarray") -> "np.ndarray":
    """Reduce uint64 values (< 2^64) modulo ``2^61 - 1`` without overflow."""
    y = (x & _P) + (x >> np.uint64(61))
    return np.where(y >= _P, y - _P, y)


def _mulmod_mersenne(a_hi: int, a_lo: int, k: "np.ndarray") -> "np.ndarray":
    """Compute ``a * k mod (2^61-1)`` with ``a = a_hi*2^31 + a_lo`` and
    ``k`` an array of values in ``[0, 2^61)``.

    All four partial products fit in uint64:
    ``a_hi < 2^30``, ``a_lo < 2^31``, ``k_hi < 2^30``, ``k_lo < 2^31``.
    Uses ``2^61 === 1`` and ``2^62 === 2 (mod p)`` to fold the high limbs.
    """
    k_hi = k >> _LIMB_BITS            # < 2^30
    k_lo = k & _LIMB_MASK             # < 2^31
    hi = np.uint64(a_hi)
    lo = np.uint64(a_lo)

    # a*k = a_hi*k_hi*2^62 + (a_hi*k_lo + a_lo*k_hi)*2^31 + a_lo*k_lo
    top = _mod_mersenne(hi * k_hi)                       # (a_hi*k_hi) mod p
    top = _mod_mersenne(top + top)                       # * 2^62 === * 2
    mid = _mod_mersenne(hi * k_lo + lo * k_hi)           # < 2^62, fits
    mid = _shl31_mod_mersenne(mid)                       # * 2^31
    bot = _mod_mersenne(lo * k_lo)                       # < 2^62, fits
    return _mod_mersenne(top + mid + bot)


def _shl31_mod_mersenne(y: "np.ndarray") -> "np.ndarray":
    """Compute ``(y << 31) mod (2^61-1)`` for ``y`` in ``[0, 2^61)``.

    ``y*2^31 = y_hi*2^61 + y_lo*2^31 === y_hi + y_lo*2^31 (mod p)`` where
    ``y = y_hi*2^30 + y_lo`` and ``y_lo*2^31 < 2^61`` fits exactly.
    """
    y_hi = y >> np.uint64(30)
    y_lo = y & np.uint64((1 << 30) - 1)
    return _mod_mersenne((y_lo << _LIMB_BITS) + y_hi)


@dataclass(frozen=True)
class PairwiseHash:
    """One hash ``h(x) = ((a*x + b) mod p) mod width`` with ``p = 2^61-1``.

    Instances are immutable and hashable so sketches can be compared and
    serialized; two sketches built from equal :class:`PairwiseHash` objects
    are bucket-for-bucket identical.
    """

    a: int
    b: int
    width: int

    def __post_init__(self) -> None:
        if not 1 <= self.a < MERSENNE_PRIME_61:
            raise ValueError(f"a must be in [1, p), got {self.a}")
        if not 0 <= self.b < MERSENNE_PRIME_61:
            raise ValueError(f"b must be in [0, p), got {self.b}")
        if self.width < 1:
            raise ValueError(f"width must be >= 1, got {self.width}")

    def __call__(self, label: Label) -> int:
        """Return the bucket of ``label`` in ``[0, width)``."""
        return self.hash_int(label_to_int(label))

    def hash_int(self, key: int) -> int:
        """Bucket an already-converted integer key (scalar fast path)."""
        return ((self.a * (key % MERSENNE_PRIME_61) + self.b) % MERSENNE_PRIME_61) % self.width

    def hash_many(self, keys: "np.ndarray") -> "np.ndarray":
        """Vectorized bucketing of an array of non-negative integer keys.

        Equivalent to ``np.array([self.hash_int(k) for k in keys])`` but
        runs entirely in uint64 numpy arithmetic.  Uses *lazy* Mersenne
        reduction: intermediates are kept merely ``< 2^63`` (congruent
        mod p, not canonical) so the whole ``(a*k + b) mod p`` needs one
        canonicalizing pass at the end instead of one per partial
        product -- about half the vector ops of the naive chain, and no
        intermediate ``np.where``.  Bucket-for-bucket identical to the
        scalar :meth:`hash_int`.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        # Nearly-reduce the key: k < 2^61 + 8, congruent to keys mod p.
        k = (keys & _P) + (keys >> np.uint64(61))
        k_hi = k >> _LIMB_BITS            # < 2^30 + 1
        k_lo = k & _LIMB_MASK             # < 2^31
        a_hi = np.uint64(self.a >> 31)    # < 2^30
        a_lo = np.uint64(self.a & ((1 << 31) - 1))
        # a*k = a_hi*k_hi*2^62 + (a_hi*k_lo + a_lo*k_hi)*2^31 + a_lo*k_lo
        # 2^61 === 1 (mod p), so *2^62 === *2: top < 2^61, no reduction.
        top = (a_hi * k_hi) << np.uint64(1)
        # mid*2^31 = m_hi*2^61 + m_lo*2^31 === m_hi + m_lo*2^31 with
        # mid = m_hi*2^30 + m_lo; the fold stays < 2^61 + 2^32.
        mid = a_hi * k_lo + a_lo * k_hi   # < 2^62, fits
        mid = (mid >> np.uint64(30)) + \
            ((mid & np.uint64((1 << 30) - 1)) << _LIMB_BITS)
        # bot < 2^62: one lazy fold brings it under 2^61 + 2.
        bot = a_lo * k_lo
        bot = (bot & _P) + (bot >> np.uint64(61))
        # top + mid + bot + b < 2^63: safe to sum, then canonicalize.
        total = top + mid + bot + np.uint64(self.b)
        total = (total & _P) + (total >> np.uint64(61))  # < 2^61 + 4
        np.subtract(total, _P, out=total, where=total >= _P)
        width = self.width
        if width & (width - 1) == 0:
            # Power-of-two width: mod == mask, and uint64 masking is an
            # order of magnitude cheaper than numpy's scalar-division mod.
            total &= np.uint64(width - 1)
            # Buckets are < width < 2^63, so the int64 reinterpretation
            # is value-preserving and skips an astype copy.
            return total.view(np.int64)
        return (total % np.uint64(width)).view(np.int64)


@lru_cache(maxsize=128)
def _bulk_coefficients(funcs: Tuple["PairwiseHash", ...]):
    """Stacked ``(d, 1)`` coefficient columns for :func:`hash_many_bulk`.

    Cached per function tuple (``PairwiseHash`` is frozen/hashable): a
    sketch hashes every batch through the same ensemble, so the setup
    cost of the list comprehensions and array constructors is paid once
    per sketch instead of once per batch.
    """
    d = len(funcs)
    a = np.array([f.a for f in funcs], dtype=np.uint64).reshape(d, 1)
    b = np.array([f.b for f in funcs], dtype=np.uint64).reshape(d, 1)
    widths = np.array([f.width for f in funcs],
                      dtype=np.uint64).reshape(d, 1)
    a_hi = a >> _LIMB_BITS
    a_lo = a & _LIMB_MASK
    mask = None
    if bool(np.all(widths & (widths - np.uint64(1)) == 0)):
        mask = widths - np.uint64(1)
    return a_hi, a_lo, b, widths, mask


_ONE = np.uint64(1)
_THIRTY = np.uint64(30)
_SIXTY_ONE = np.uint64(61)
_M30 = np.uint64((1 << 30) - 1)


def hash_many_bulk(funcs: Sequence["PairwiseHash"],
                   keys: "np.ndarray") -> "np.ndarray":
    """Bucket one key column through several hash functions at once.

    Returns an ``(len(funcs), len(keys))`` int64 array where row ``i``
    equals ``funcs[i].hash_many(keys)`` exactly.  Stacking the
    ``(a, b, width)`` coefficients as ``(d, 1)`` columns and
    broadcasting against the ``(n,)`` keys runs the whole ensemble in
    one pass instead of ``d`` separate passes -- numpy dispatch
    overhead is paid once, which is most of the cost at sketch-sized
    batches.  The partial products accumulate in-place into three
    ``(d, n)`` scratch buffers (the naive chain allocates ~16), and
    all-power-of-two ensembles take a mask instead of the slow uint64
    ``%``.  Same lazy Mersenne reduction as
    :meth:`PairwiseHash.hash_many`; the arithmetic is elementwise
    identical, so the buckets are bit-identical.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    if not funcs:
        raise ValueError("hash_many_bulk needs at least one function")
    a_hi, a_lo, b, widths, mask = _bulk_coefficients(tuple(funcs))
    k = (keys & _P) + (keys >> _SIXTY_ONE)
    k_hi = k >> _LIMB_BITS
    k_lo = k & _LIMB_MASK
    # acc <- top = (a_hi*k_hi) * 2   (2^62 === 2 mod p, stays < 2^61)
    acc = a_hi * k_hi
    acc <<= _ONE
    # mid = a_hi*k_lo + a_lo*k_hi, folded by *2^31 === (>>30) + (&m30)<<31
    mid = a_hi * k_lo
    scratch = a_lo * k_hi
    mid += scratch
    np.right_shift(mid, _THIRTY, out=scratch)
    mid &= _M30
    mid <<= _LIMB_BITS
    mid += scratch
    acc += mid
    # bot = a_lo*k_lo < 2^62: one lazy fold brings it under 2^61 + 2
    np.multiply(a_lo, k_lo, out=mid)
    np.right_shift(mid, _SIXTY_ONE, out=scratch)
    mid &= _P
    mid += scratch
    acc += mid
    acc += b
    # canonicalize: acc < 2^63, two folds + one conditional subtract
    np.right_shift(acc, _SIXTY_ONE, out=scratch)
    acc &= _P
    acc += scratch
    np.subtract(acc, _P, out=acc, where=acc >= _P)
    if mask is not None:
        acc &= mask
        # Buckets are < width < 2^63, so the int64 reinterpretation is
        # value-preserving and skips an astype copy.
        return acc.view(np.int64)
    return (acc % widths).view(np.int64)


class HashFamily:
    """``d`` independent pairwise hash functions over a common key space.

    This is the object handed to a :class:`~repro.core.tcm.TCM`: one
    :class:`PairwiseHash` per constituent graph sketch.  Functions may have
    different widths (used by non-square matrices, paper Section 5.1.2).
    """

    def __init__(self, widths: Sequence[int], seed: Optional[int] = None):
        if not widths:
            raise ValueError("HashFamily needs at least one width")
        rng = random.Random(seed)
        self._functions = tuple(
            PairwiseHash(
                a=rng.randrange(1, MERSENNE_PRIME_61),
                b=rng.randrange(0, MERSENNE_PRIME_61),
                width=w,
            )
            for w in widths
        )

    @classmethod
    def uniform(cls, d: int, width: int, seed: Optional[int] = None) -> "HashFamily":
        """Family of ``d`` functions that all map into ``[0, width)``."""
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        return cls([width] * d, seed=seed)

    def __len__(self) -> int:
        return len(self._functions)

    def __iter__(self) -> Iterator[PairwiseHash]:
        return iter(self._functions)

    def __getitem__(self, i: int) -> PairwiseHash:
        return self._functions[i]
