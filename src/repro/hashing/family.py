"""Carter-Wegman pairwise-independent hash functions.

A family ``H = {h : U -> [0, w)}`` is pairwise independent when for distinct
keys ``x != y`` and any buckets ``k, l``::

    Pr[h(x) = k and h(y) = l] = 1 / w**2

The classic construction ``h(x) = ((a*x + b) mod p) mod w`` with ``p`` prime,
``a`` drawn uniformly from ``[1, p)`` and ``b`` from ``[0, p)`` achieves this
(up to the small bias of the final ``mod w``).  We use the Mersenne prime
``p = 2**61 - 1``, which covers 64-bit label keys after one reduction, keeps
scalar arithmetic in native Python ints, and admits an overflow-free
vectorized implementation in uint64 numpy arrays via limb splitting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.hashing.labels import Label, label_to_int

MERSENNE_PRIME_61 = (1 << 61) - 1

_P = np.uint64(MERSENNE_PRIME_61)
_LIMB_BITS = np.uint64(31)
_LIMB_MASK = np.uint64((1 << 31) - 1)


def _mod_mersenne(x: "np.ndarray") -> "np.ndarray":
    """Reduce uint64 values (< 2^64) modulo ``2^61 - 1`` without overflow."""
    y = (x & _P) + (x >> np.uint64(61))
    return np.where(y >= _P, y - _P, y)


def _mulmod_mersenne(a_hi: int, a_lo: int, k: "np.ndarray") -> "np.ndarray":
    """Compute ``a * k mod (2^61-1)`` with ``a = a_hi*2^31 + a_lo`` and
    ``k`` an array of values in ``[0, 2^61)``.

    All four partial products fit in uint64:
    ``a_hi < 2^30``, ``a_lo < 2^31``, ``k_hi < 2^30``, ``k_lo < 2^31``.
    Uses ``2^61 === 1`` and ``2^62 === 2 (mod p)`` to fold the high limbs.
    """
    k_hi = k >> _LIMB_BITS            # < 2^30
    k_lo = k & _LIMB_MASK             # < 2^31
    hi = np.uint64(a_hi)
    lo = np.uint64(a_lo)

    # a*k = a_hi*k_hi*2^62 + (a_hi*k_lo + a_lo*k_hi)*2^31 + a_lo*k_lo
    top = _mod_mersenne(hi * k_hi)                       # (a_hi*k_hi) mod p
    top = _mod_mersenne(top + top)                       # * 2^62 === * 2
    mid = _mod_mersenne(hi * k_lo + lo * k_hi)           # < 2^62, fits
    mid = _shl31_mod_mersenne(mid)                       # * 2^31
    bot = _mod_mersenne(lo * k_lo)                       # < 2^62, fits
    return _mod_mersenne(top + mid + bot)


def _shl31_mod_mersenne(y: "np.ndarray") -> "np.ndarray":
    """Compute ``(y << 31) mod (2^61-1)`` for ``y`` in ``[0, 2^61)``.

    ``y*2^31 = y_hi*2^61 + y_lo*2^31 === y_hi + y_lo*2^31 (mod p)`` where
    ``y = y_hi*2^30 + y_lo`` and ``y_lo*2^31 < 2^61`` fits exactly.
    """
    y_hi = y >> np.uint64(30)
    y_lo = y & np.uint64((1 << 30) - 1)
    return _mod_mersenne((y_lo << _LIMB_BITS) + y_hi)


@dataclass(frozen=True)
class PairwiseHash:
    """One hash ``h(x) = ((a*x + b) mod p) mod width`` with ``p = 2^61-1``.

    Instances are immutable and hashable so sketches can be compared and
    serialized; two sketches built from equal :class:`PairwiseHash` objects
    are bucket-for-bucket identical.
    """

    a: int
    b: int
    width: int

    def __post_init__(self) -> None:
        if not 1 <= self.a < MERSENNE_PRIME_61:
            raise ValueError(f"a must be in [1, p), got {self.a}")
        if not 0 <= self.b < MERSENNE_PRIME_61:
            raise ValueError(f"b must be in [0, p), got {self.b}")
        if self.width < 1:
            raise ValueError(f"width must be >= 1, got {self.width}")

    def __call__(self, label: Label) -> int:
        """Return the bucket of ``label`` in ``[0, width)``."""
        return self.hash_int(label_to_int(label))

    def hash_int(self, key: int) -> int:
        """Bucket an already-converted integer key (scalar fast path)."""
        return ((self.a * (key % MERSENNE_PRIME_61) + self.b) % MERSENNE_PRIME_61) % self.width

    def hash_many(self, keys: "np.ndarray") -> "np.ndarray":
        """Vectorized bucketing of an array of non-negative integer keys.

        Equivalent to ``np.array([self.hash_int(k) for k in keys])`` but
        runs entirely in uint64 numpy arithmetic.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        k = _mod_mersenne(keys)
        prod = _mulmod_mersenne(self.a >> 31, self.a & ((1 << 31) - 1), k)
        total = _mod_mersenne(prod + np.uint64(self.b))
        return (total % np.uint64(self.width)).astype(np.int64)


class HashFamily:
    """``d`` independent pairwise hash functions over a common key space.

    This is the object handed to a :class:`~repro.core.tcm.TCM`: one
    :class:`PairwiseHash` per constituent graph sketch.  Functions may have
    different widths (used by non-square matrices, paper Section 5.1.2).
    """

    def __init__(self, widths: Sequence[int], seed: Optional[int] = None):
        if not widths:
            raise ValueError("HashFamily needs at least one width")
        rng = random.Random(seed)
        self._functions = tuple(
            PairwiseHash(
                a=rng.randrange(1, MERSENNE_PRIME_61),
                b=rng.randrange(0, MERSENNE_PRIME_61),
                width=w,
            )
            for w in widths
        )

    @classmethod
    def uniform(cls, d: int, width: int, seed: Optional[int] = None) -> "HashFamily":
        """Family of ``d`` functions that all map into ``[0, width)``."""
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        return cls([width] * d, seed=seed)

    def __len__(self) -> int:
        return len(self._functions)

    def __iter__(self) -> Iterator[PairwiseHash]:
        return iter(self._functions)

    def __getitem__(self, i: int) -> PairwiseHash:
        return self._functions[i]
