"""Stable mapping from node labels to 64-bit integers.

Node labels in a graph stream are opaque identifiers -- IP addresses, user
ids, author names (paper Section 3.1).  Before a pairwise-independent hash
can be applied, a label must be turned into an integer key.  We use FNV-1a,
a small, fast, well-distributed non-cryptographic hash that is identical
across processes and platforms (unlike Python's salted ``hash``).

Because real streams repeat the same labels constantly (a heavy host
appears in millions of elements), the byte-wise FNV loop is the single
largest string-ingest cost.  :func:`label_key` and the bulk converter
:func:`label_keys` intern computed keys in a process-wide dict so each
distinct string/bytes label is hashed exactly once; integer labels pass
through untouched (they were already free).  The cache is bounded with
an LRU-style cap: at :func:`label_cache_limit` distinct labels the
*oldest-inserted* eighth of the entries is evicted (Python dicts iterate
in insertion order, so the victims are the labels interned longest ago)
and the eviction is counted in :func:`label_cache_info`.  The hit path
stays a single dict probe -- no per-hit recency bookkeeping -- while a
long-running server can no longer leak memory through an unbounded tail
of one-shot labels: the cache's footprint is capped at ``maxsize``
entries forever, and hot labels that re-appear after eviction simply pay
one fresh FNV pass.  :func:`set_label_cache_limit` tunes the cap (e.g.
down for memory-constrained tenants, up for label-heavy batch jobs).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Union

import numpy as np

Label = Union[str, bytes, int]

_FNV_OFFSET_64 = 0xCBF29CE484222325
_FNV_PRIME_64 = 0x100000001B3
_MASK_64 = (1 << 64) - 1


def fnv1a_64(data: bytes) -> int:
    """Return the 64-bit FNV-1a hash of ``data``.

    >>> fnv1a_64(b"")
    14695981039346656037
    """
    value = _FNV_OFFSET_64
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME_64) & _MASK_64
    return value


def label_to_int(label: Label) -> int:
    """Map a node label to a stable non-negative 64-bit integer key.

    Integers are passed through (mod 2^64) so that integer-labelled streams
    pay no hashing cost on ingest; strings and bytes go through FNV-1a.

    :raises TypeError: for unsupported label types, so that silently bad
        keys (e.g. floats, which would collide after truncation) are
        rejected at the boundary.
    """
    if isinstance(label, bool):
        # bool is a subclass of int but almost certainly a caller bug.
        raise TypeError("bool is not a valid node label")
    if isinstance(label, int):
        return label & _MASK_64
    if isinstance(label, str):
        return fnv1a_64(label.encode("utf-8"))
    if isinstance(label, bytes):
        return fnv1a_64(label)
    raise TypeError(f"unsupported node label type: {type(label).__name__}")


#: Default cap on distinct string/bytes labels retained by the interning
#: cache.  2^20 entries is ~100MB worst case for long labels, far below
#: the sketches the cache feeds.  Tune per process with
#: :func:`set_label_cache_limit`.
LABEL_CACHE_LIMIT = 1 << 20

_KEY_CACHE: Dict[Union[str, bytes], int] = {}
_cache_limit = LABEL_CACHE_LIMIT
_cache_hits = 0
_cache_misses = 0
_cache_evictions = 0


def set_label_cache_limit(maxsize: int) -> None:
    """Set the interning cache's entry cap, shrinking it now if needed.

    A long-running service sizes this per deployment: the cache holds at
    most ``maxsize`` label->key entries from here on.  Shrinking below
    the current occupancy evicts the oldest entries immediately (counted
    as evictions, like cap-triggered ones).
    """
    global _cache_limit
    if maxsize < 1:
        raise ValueError(f"maxsize must be >= 1, got {maxsize}")
    _cache_limit = maxsize
    if len(_KEY_CACHE) > maxsize:
        _evict(len(_KEY_CACHE) - maxsize)


def label_cache_limit() -> int:
    """The current entry cap of the interning cache."""
    return _cache_limit


def _evict(count: int) -> None:
    """Drop the ``count`` oldest-inserted entries (insertion-order LRU)."""
    global _cache_evictions
    victims = list(itertools.islice(iter(_KEY_CACHE), count))
    for label in victims:
        del _KEY_CACHE[label]
    _cache_evictions += len(victims)


def _make_room() -> None:
    """Evict an eighth of the cap (>= 1 entry) before a full-cache insert.

    Batched eviction keeps the amortized insert cost at O(1): one
    O(cap/8) sweep admits cap/8 fresh labels before the next sweep.
    """
    _evict(max(1, _cache_limit >> 3))


def label_key(label: Label) -> int:
    """:func:`label_to_int` with interning for string/bytes labels.

    The first conversion of a distinct label pays the FNV-1a pass; every
    repeat is a dict hit.  Integer labels bypass the cache entirely.
    """
    global _cache_hits, _cache_misses
    cls = type(label)
    if cls is int:
        return label & _MASK_64
    if cls is str or cls is bytes:
        cached = _KEY_CACHE.get(label)
        if cached is not None:
            _cache_hits += 1
            return cached
        key = fnv1a_64(label.encode("utf-8") if cls is str else label)
        if len(_KEY_CACHE) >= _cache_limit:
            _make_room()
        _KEY_CACHE[label] = key
        _cache_misses += 1
        return key
    # Subclasses and unsupported types take the validating slow path.
    return label_to_int(label)


def label_keys(labels: Iterable[Label]) -> "np.ndarray":
    """Bulk-convert labels to the uint64 key array the sketch kernels eat.

    The cached counterpart of ``np.array([label_to_int(x) for x in ...])``
    and the converter every batched ingest/query path goes through: one
    dict probe per repeated string label, one FNV pass per distinct one.
    """
    global _cache_hits, _cache_misses
    if isinstance(labels, np.ndarray):
        if labels.dtype.kind in "iu":
            return labels.astype(np.uint64, copy=False)
        labels = labels.tolist()
    elif not isinstance(labels, (list, tuple)):
        labels = list(labels)
    # Vectorized fast path for all-integer columns (generator streams and
    # pre-hashed keys): one C-level conversion instead of 65k scalar
    # assignments.  Mixed or huge-int columns fall through to the loop
    # (np.asarray yields a non-integer dtype or overflows).
    if labels and type(labels[0]) is int:
        try:
            arr = np.asarray(labels)
        except OverflowError:
            arr = None
        if arr is not None and arr.dtype.kind in "iu":
            return arr.astype(np.uint64, copy=False)
    out = np.empty(len(labels), dtype=np.uint64)
    cache = _KEY_CACHE
    hits = misses = 0
    for i, label in enumerate(labels):
        cls = type(label)
        if cls is int:
            out[i] = label & _MASK_64
        elif cls is str or cls is bytes:
            cached = cache.get(label)
            if cached is None:
                cached = fnv1a_64(
                    label.encode("utf-8") if cls is str else label)
                if len(cache) >= _cache_limit:
                    _make_room()
                cache[label] = cached
                misses += 1
            else:
                hits += 1
            out[i] = cached
        else:
            out[i] = label_to_int(label)
    _cache_hits += hits
    _cache_misses += misses
    return out


def label_cache_info() -> Dict[str, int]:
    """Hit/miss/size/eviction counters for the interning cache."""
    return {"hits": _cache_hits, "misses": _cache_misses,
            "size": len(_KEY_CACHE), "limit": _cache_limit,
            "evictions": _cache_evictions}


def label_cache_bytes() -> int:
    """Estimated footprint of the interning cache.

    Sampled rather than summed: ``sys.getsizeof`` over every key would be
    O(cache) per telemetry tick.  Up to 256 keys are measured and the mean
    per-entry size (key object + dict slot + cached int) is extrapolated
    to the full cache, which is accurate enough for the RSS-accounting
    gauge this feeds (``label_cache_bytes`` in docs/OBSERVABILITY.md).
    """
    import sys
    size = len(_KEY_CACHE)
    if size == 0:
        return 0
    sampled = 0
    total = 0
    for label in _KEY_CACHE:
        # ~104B: one dict slot (key+value pointers, hash, load factor
        # headroom) plus the cached int object.
        total += sys.getsizeof(label) + 104
        sampled += 1
        if sampled >= 256:
            break
    return int(total / sampled * size)


def clear_label_cache() -> None:
    """Drop all interned keys and reset the hit/miss/eviction counters."""
    global _cache_hits, _cache_misses, _cache_evictions
    _KEY_CACHE.clear()
    _cache_hits = 0
    _cache_misses = 0
    _cache_evictions = 0
