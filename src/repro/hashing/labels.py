"""Stable mapping from node labels to 64-bit integers.

Node labels in a graph stream are opaque identifiers -- IP addresses, user
ids, author names (paper Section 3.1).  Before a pairwise-independent hash
can be applied, a label must be turned into an integer key.  We use FNV-1a,
a small, fast, well-distributed non-cryptographic hash that is identical
across processes and platforms (unlike Python's salted ``hash``).
"""

from __future__ import annotations

from typing import Union

Label = Union[str, bytes, int]

_FNV_OFFSET_64 = 0xCBF29CE484222325
_FNV_PRIME_64 = 0x100000001B3
_MASK_64 = (1 << 64) - 1


def fnv1a_64(data: bytes) -> int:
    """Return the 64-bit FNV-1a hash of ``data``.

    >>> fnv1a_64(b"")
    14695981039346656037
    """
    value = _FNV_OFFSET_64
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME_64) & _MASK_64
    return value


def label_to_int(label: Label) -> int:
    """Map a node label to a stable non-negative 64-bit integer key.

    Integers are passed through (mod 2^64) so that integer-labelled streams
    pay no hashing cost on ingest; strings and bytes go through FNV-1a.

    :raises TypeError: for unsupported label types, so that silently bad
        keys (e.g. floats, which would collide after truncation) are
        rejected at the boundary.
    """
    if isinstance(label, bool):
        # bool is a subclass of int but almost certainly a caller bug.
        raise TypeError("bool is not a valid node label")
    if isinstance(label, int):
        return label & _MASK_64
    if isinstance(label, str):
        return fnv1a_64(label.encode("utf-8"))
    if isinstance(label, bytes):
        return fnv1a_64(label)
    raise TypeError(f"unsupported node label type: {type(label).__name__}")
