"""Pairwise-independent hashing substrate.

The TCM paper (Section 5.2) requires pairwise-independent hash functions to
bound the collision probability of the graphical sketch.  This package
provides:

- :func:`fnv1a_64` / :func:`label_to_int`: a deterministic, platform-stable
  mapping from arbitrary node labels (strings, bytes, ints) to 64-bit
  integers.  Python's built-in ``hash`` is salted per process and therefore
  unsuitable for reproducible sketches.
- :class:`PairwiseHash`: a single Carter-Wegman hash
  ``h(x) = ((a*x + b) mod p) mod w`` over the Mersenne prime ``p = 2^61-1``.
- :class:`HashFamily`: ``d`` independent :class:`PairwiseHash` instances
  drawn from a seeded RNG, as used by the TCM ensemble.
- :func:`label_key` / :func:`label_keys`: the interning-cached scalar and
  bulk converters the batched ingest/query kernels go through, so each
  distinct string label is FNV-hashed exactly once per process.
"""

from repro.hashing.labels import (
    clear_label_cache,
    fnv1a_64,
    label_cache_info,
    label_key,
    label_keys,
    label_to_int,
)
from repro.hashing.family import MERSENNE_PRIME_61, HashFamily, PairwiseHash

__all__ = [
    "fnv1a_64",
    "label_to_int",
    "label_key",
    "label_keys",
    "label_cache_info",
    "clear_label_cache",
    "PairwiseHash",
    "HashFamily",
    "MERSENNE_PRIME_61",
]
