"""Algorithm 2: heavy triangle connections (Appendix B.2).

The analytic: find the top-k heaviest edges, then for each heavy edge
``(x, y)`` the top-l nodes ``z`` that communicate heavily with *both*
endpoints, ranked by the harmonic-style score

    score(z) = (f_e(z, x) * f_e(z, y)) / (f_e(z, x) + f_e(z, y))

The candidate set for ``z`` cannot be recovered from hashed values alone,
so this is the showcase for the *extended* graph sketch (Section 5.1.4):
bucket ``i`` is a candidate when both ``M[i][h(x)] > 0`` and
``M[i][h(y)] > 0``, and ``ext(i)`` materializes the labels behind it.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.tcm import TCM
from repro.hashing.labels import Label
from repro.obs.instruments import OBS
from repro.obs.tracing import TRACER

HeavyEdge = Tuple[Label, Label]
Connection = Tuple[Label, float]


def _edge_estimate(tcm: TCM, z: Label, x: Label) -> float:
    """Communication weight between ``z`` and ``x``.

    Directed streams count both directions (communication is mutual in the
    paper's cyber-security framing); undirected streams have one estimate.
    """
    if tcm.directed:
        return tcm.edge_weight(z, x) + tcm.edge_weight(x, z)
    return tcm.edge_weight(z, x)


def triangle_score(weight_zx: float, weight_zy: float) -> float:
    """The ranking function of Algorithm 2 line 8; 0 if either edge absent."""
    if weight_zx <= 0 or weight_zy <= 0:
        return 0.0
    return (weight_zx * weight_zy) / (weight_zx + weight_zy)


def connection_candidates(tcm: TCM, x: Label, y: Label) -> Set[Label]:
    """Candidate common neighbours of ``(x, y)`` -- Algorithm 2 lines 4-7.

    Scans the first sketch's matrix column-wise: every bucket ``i`` with
    positive weight towards both ``h(x)`` and ``h(y)`` contributes its
    materialized labels.  (The paper presents d=1 for simplicity and notes
    the d>1 adaption is easy: we intersect candidates across sketches,
    which can only remove false candidates.)
    """
    started = time.perf_counter() if OBS.enabled else 0.0
    candidates: Set[Label] = set()
    first = True
    for sketch in tcm.sketches:
        if not sketch.keeps_labels:
            raise ValueError(
                "heavy triangle connections need an extended sketch; "
                "build the TCM with keep_labels=True")
        hx, hy = sketch.node_of(x), sketch.node_of(y)
        local: Set[Label] = set()
        for bucket in range(sketch.rows):
            towards_x = (sketch.bucket_edge_weight(bucket, hx) > 0
                         or sketch.bucket_edge_weight(hx, bucket) > 0)
            towards_y = (sketch.bucket_edge_weight(bucket, hy) > 0
                         or sketch.bucket_edge_weight(hy, bucket) > 0)
            if towards_x and towards_y:
                local |= sketch.ext(bucket)
        candidates = local if first else (candidates & local)
        first = False
    candidates.discard(x)
    candidates.discard(y)
    if OBS.enabled:
        OBS.triangle_query_seconds.labels("candidates").observe(
            time.perf_counter() - started)
    return candidates


def heavy_triangle_connections(
        tcm: TCM,
        heavy_edges: Sequence[HeavyEdge],
        l: int) -> List[Tuple[HeavyEdge, List[Connection]]]:
    """Algorithm 2: top-l triangle connections for each heavy edge.

    :param heavy_edges: the top-k heavy edges, e.g. from
        :class:`~repro.core.heavy_hitters.HeavyEdgeMonitor` (line 2 of the
        algorithm leaves heavy-edge discovery to the monitor).
    :param l: connections to report per heavy edge.
    :returns: ``[((x, y), [(z, score), ...]), ...]`` in input edge order,
        scores descending.
    """
    if l < 1:
        raise ValueError(f"l must be >= 1, got {l}")
    started = time.perf_counter() if OBS.enabled else 0.0
    results: List[Tuple[HeavyEdge, List[Connection]]] = []
    with TRACER.span("tcm.triangles.heavy_connections",
                     heavy_edges=len(heavy_edges), l=l):
        for x, y in heavy_edges:                               # line 3
            scored: Dict[Label, float] = {}
            for z in connection_candidates(tcm, x, y):         # lines 4-7
                score = triangle_score(_edge_estimate(tcm, z, x),
                                       _edge_estimate(tcm, z, y))  # line 8
                if score > 0:
                    scored[z] = score
            top = sorted(scored.items(),
                         key=lambda kv: (-kv[1], repr(kv[0])))[:l]  # line 9
            results.append(((x, y), top))
    if OBS.enabled:
        OBS.triangle_query_seconds.labels("algorithm2").observe(
            time.perf_counter() - started)
    return results                                             # line 10
