"""Exponentially time-decayed TCM (paper Section 7, future work).

"We plan to use it for revisiting a set of graph mining problems, e.g.,
finding the evolution of graphs."  A time-decayed summary weights each
element by ``decay ** (now - t)``, so recent structure dominates and old
structure fades smoothly -- the continuous alternative to the hard cutoff
of :class:`~repro.streams.window.SlidingWindow`.

Because sum aggregation is linear, decay never needs to touch the
matrices: the sketch keeps a running scale factor and divides incoming
weights by it, so advancing time is O(1) and a query is one multiply.
The scale is renormalized into the matrices whenever it risks floating
underflow, keeping the structure numerically stable over unbounded time.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

from repro.core.aggregation import Aggregation
from repro.core.tcm import TCM
from repro.hashing.labels import Label

# Renormalize when the running scale leaves this band.
_RENORM_LOW = 1e-120
_RENORM_HIGH = 1e120


class TimeDecayedTCM:
    """A TCM whose weights decay exponentially with stream time.

    :param decay: per-time-unit retention factor in (0, 1); e.g. 0.99
        with seconds as time units halves an edge's weight every ~69 s.
    :param sparse: use the dict-backed sparse sketch backend
        (renormalization scales occupied cells only).
    :param kwargs: forwarded to :class:`TCM` (d, width, seed, directed).
        Sum aggregation is required (decay relies on linearity).
    """

    def __init__(self, decay: float, *, d: int = 4, width: int = 64,
                 seed: Optional[int] = 0, directed: bool = True,
                 sparse: bool = False):
        if not 0 < decay < 1:
            raise ValueError(f"decay must be in (0, 1), got {decay}")
        self.decay = decay
        self._tcm = TCM(d=d, width=width, seed=seed, directed=directed,
                        aggregation=Aggregation.SUM, sparse=sparse)
        self._now = 0.0
        # Matrices hold values in "epoch" units; real value = cell * scale.
        self._scale = 1.0

    @property
    def now(self) -> float:
        """The current stream time."""
        return self._now

    @property
    def tcm(self) -> TCM:
        """The underlying summary (cells are in internal scaled units)."""
        return self._tcm

    def advance_to(self, timestamp: float) -> None:
        """Move stream time forward; all stored weights decay -- O(1)."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot move time backwards to {timestamp} "
                f"(currently {self._now})")
        self._scale *= self.decay ** (timestamp - self._now)
        self._now = timestamp
        if not _RENORM_LOW < self._scale < _RENORM_HIGH:
            self._renormalize()

    def _renormalize(self) -> None:
        """Fold the running scale into the cells (rare, O(cells)).

        Delegates to the backend's :meth:`scale_by`, which bumps the
        sketch epoch -- so the query engine's cached indexes invalidate
        exactly when cell magnitudes actually change.
        """
        for sketch in self._tcm.sketches:
            sketch.scale_by(self._scale)
        self._scale = 1.0

    def observe(self, source: Label, target: Label, weight: float = 1.0,
                timestamp: Optional[float] = None) -> None:
        """Ingest one element at ``timestamp`` (default: current time).

        Elements may not arrive out of time order.
        """
        if timestamp is not None:
            self.advance_to(timestamp)
        # Stored value is weight / scale, so that value * scale == weight
        # now and decays together with everything else afterwards.
        self._tcm.update(source, target, weight / self._scale)

    def consume(self, stream) -> int:
        count = 0
        for edge in stream:
            self.observe(edge.source, edge.target, edge.weight,
                         edge.timestamp)
            count += 1
        return count

    # -- queries (all in decayed units as of `now`) ---------------------------

    def edge_weight(self, source: Label, target: Label) -> float:
        """Decayed aggregated edge weight as of the current time."""
        return self._tcm.edge_weight(source, target) * self._scale

    def out_flow(self, node: Label) -> float:
        return self._tcm.out_flow(node) * self._scale

    def in_flow(self, node: Label) -> float:
        return self._tcm.in_flow(node) * self._scale

    def flow(self, node: Label) -> float:
        return self._tcm.flow(node) * self._scale

    def total_weight_estimate(self) -> float:
        return self._tcm.total_weight_estimate() * self._scale

    def reachable(self, source: Label, target: Label) -> bool:
        """Reachability over edges with any surviving (positive) weight.

        Decay scales all cells uniformly, so topology is unaffected until
        weights underflow entirely -- reachability equals the undecayed
        sketch's answer.
        """
        return self._tcm.reachable(source, target)

    def half_life(self) -> float:
        """Time for any weight to halve: ``ln 2 / -ln(decay)``."""
        return math.log(2.0) / -math.log(self.decay)
