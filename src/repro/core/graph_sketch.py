"""A single graphical sketch: one hashed adjacency matrix.

This is the building block of TCM (paper Section 3.3 and 5.1).  A
:class:`GraphSketch` compresses the node universe through one
pairwise-independent hash function into ``rows`` buckets and stores the
aggregated edge weights between buckets in a dense ``rows x cols`` numpy
matrix -- the data structure the paper argues for over adjacency lists
because every update and point lookup is O(1).

Square sketches (``rows == cols`` under a *single* hash function) are
themselves graphs: bucket ``i`` is a super-node and the matrix is its
weighted adjacency.  All connectivity-dependent analytics (reachability,
subgraph matching, triangles) require this graphical form.

Non-square sketches (Section 5.1.2) use two hash functions, one for source
rows and one for target columns, trading the graphical property for better
collision behaviour under skewed degree distributions; with ``cols == 1``
they degenerate to a CountMin row over source labels (Section 5.1.3).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.aggregation import Aggregation
from repro.core import kernels as _kernels
from repro.hashing.family import PairwiseHash
from repro.hashing.labels import Label, label_to_int
from repro.hashing.labels import label_keys as _label_keys


class GraphSketch:
    """One hashed adjacency matrix over bucketed nodes.

    :param row_hash: hash for source labels (and target labels too when
        ``col_hash`` is omitted -- the square, graphical case).
    :param col_hash: optional separate hash for target labels; supplying
        one makes the sketch non-square and non-graphical.
    :param directed: undirected sketches keep the matrix symmetric by
        mirroring every update (paper Section 5.1.1).
    :param aggregation: cell aggregation strategy; ``sum`` by default.
    :param keep_labels: materialize the *extended graph sketch* (Section
        5.1.4): record, per bucket, the set of labels hashed into it.
        Costs O(|V|) extra space and enables label recovery (Algorithm 2).
    """

    def __init__(self, row_hash: PairwiseHash,
                 col_hash: Optional[PairwiseHash] = None,
                 directed: bool = True,
                 aggregation: Aggregation = Aggregation.SUM,
                 keep_labels: bool = False,
                 dtype: type = np.float64):
        self._row_hash = row_hash
        self._col_hash = col_hash if col_hash is not None else row_hash
        self._graphical = col_hash is None
        if not directed and not self._graphical:
            raise ValueError(
                "undirected sketches need a single hash function "
                "(symmetric square matrix); do not pass col_hash")
        self.directed = directed
        self.aggregation = aggregation
        self._matrix = np.zeros((row_hash.width, self._col_hash.width), dtype=dtype)
        self._epoch = 0
        self._touched: Optional[np.ndarray] = None
        if aggregation in (Aggregation.MIN, Aggregation.MAX):
            # min/max need to distinguish "empty cell" from "value 0".
            self._touched = np.zeros(self._matrix.shape, dtype=bool)
        self._row_labels: Optional[Dict[int, Set[Label]]] = {} if keep_labels else None
        self._col_labels: Optional[Dict[int, Set[Label]]] = (
            self._row_labels if (keep_labels and self._graphical)
            else ({} if keep_labels else None))

    # -- shape and introspection --------------------------------------------

    @property
    def rows(self) -> int:
        return self._matrix.shape[0]

    @property
    def cols(self) -> int:
        return self._matrix.shape[1]

    @property
    def shape(self) -> Tuple[int, int]:
        return self._matrix.shape

    @property
    def size_in_cells(self) -> int:
        """Storage footprint in matrix cells (the paper's space unit)."""
        return self._matrix.size

    @property
    def is_graphical(self) -> bool:
        """True when the sketch is a graph (square, single hash function)."""
        return self._graphical

    @property
    def matrix(self) -> np.ndarray:
        """Read-only view of the adjacency matrix."""
        view = self._matrix.view()
        view.flags.writeable = False
        return view

    @property
    def keeps_labels(self) -> bool:
        return self._row_labels is not None

    @property
    def epoch(self) -> int:
        """Monotone update counter; bumped by every mutating operation.

        Derived read-side structures (the query engine's connectivity
        indexes, cached flow vectors, ...) are keyed on this value: a
        cached structure is valid exactly while the epoch it was built at
        matches the sketch's current epoch.
        """
        return self._epoch

    def bump_epoch(self) -> None:
        """Invalidate epoch-keyed caches after an out-of-band mutation.

        The public mutators bump automatically; call this only when code
        touches the matrix directly (e.g. the decay layer's
        renormalization).
        """
        self._epoch += 1

    def memory_bytes(self) -> int:
        """Memory footprint in bytes: matrix + label materialization.

        The matrix (and the touched-mask for min/max aggregation) is
        exact via numpy's ``nbytes``; extended-sketch label storage is
        estimated at one dict slot (~64B) per occupied bucket plus ~80B
        per materialized label (set slot + small label object) -- close
        enough for capacity planning, cheap enough to call per scrape.
        Also available as :attr:`nbytes`.
        """
        total = self._matrix.nbytes
        if self._touched is not None:
            total += self._touched.nbytes
        if self._row_labels is not None:
            maps = [self._row_labels]
            if self._col_labels is not self._row_labels:
                maps.append(self._col_labels)
            for label_map in maps:
                total += 64 * len(label_map)
                total += 80 * sum(len(bucket) for bucket in label_map.values())
        return total

    @property
    def nbytes(self) -> int:
        return self.memory_bytes()

    def row_of(self, label: Label) -> int:
        """The row bucket of a (source) label."""
        return self._row_hash(label)

    def col_of(self, label: Label) -> int:
        """The column bucket of a (target) label."""
        return self._col_hash(label)

    def node_of(self, label: Label) -> int:
        """The super-node of a label; graphical sketches only."""
        self._require_graphical("node_of")
        return self._row_hash(label)

    def ext(self, bucket: int) -> Set[Label]:
        """Labels materialized into ``bucket`` (extended sketch, §5.1.4)."""
        if self._row_labels is None:
            raise ValueError("sketch was built without keep_labels=True")
        return set(self._row_labels.get(bucket, ()))

    # -- updates -------------------------------------------------------------

    def update(self, source: Label, target: Label, weight: float = 1.0) -> None:
        """Absorb one stream element ``(source, target; .)`` -- O(1).

        Implements strategy C2 of Section 5.1.1 for sum (and the analogous
        rules for the other aggregations).
        """
        if weight < 0:
            raise ValueError(f"stream weights must be non-negative, got {weight}")
        r, c = self._buckets(source, target)
        self._epoch += 1
        self._apply(r, c, weight)
        if self._row_labels is not None:
            # For graphical sketches row and column label maps are the same
            # dict, so this covers undirected canonicalisation too.
            self._row_labels.setdefault(self._row_hash(source), set()).add(source)
            self._col_labels.setdefault(self._col_hash(target), set()).add(target)

    def _buckets(self, source: Label, target: Label) -> Tuple[int, int]:
        """The matrix cell an element maps to.

        Undirected sketches store each unordered edge once, under the
        *label-canonical* orientation (smaller integer key first).  This
        keeps the whole ``w x w`` matrix usable -- mirroring would double
        the matrix mass, and canonicalising by *bucket* order would waste
        the lower triangle; both cost a factor of two in collision error
        against an equal-space CountMin.
        """
        kx = label_to_int(source)
        ky = label_to_int(target)
        if not self.directed and kx > ky:
            kx, ky = ky, kx
        return self._row_hash.hash_int(kx), self._col_hash.hash_int(ky)

    def _apply(self, r: int, c: int, weight: float) -> None:
        if self.aggregation is Aggregation.SUM:
            self._matrix[r, c] += weight
        elif self.aggregation is Aggregation.COUNT:
            self._matrix[r, c] += 1
        elif self.aggregation is Aggregation.MIN:
            if not self._touched[r, c] or weight < self._matrix[r, c]:
                self._matrix[r, c] = weight
            self._touched[r, c] = True
        else:  # MAX
            if not self._touched[r, c] or weight > self._matrix[r, c]:
                self._matrix[r, c] = weight
            self._touched[r, c] = True

    def remove(self, source: Label, target: Label, weight: float = 1.0) -> None:
        """Delete one previously inserted element -- O(1) (Section 5.1.1).

        Only meaningful for invertible aggregations (sum/count); the caller
        is responsible for only deleting elements that were inserted, as in
        a sliding window.
        """
        if not self.aggregation.invertible:
            raise ValueError(
                f"{self.aggregation.value} aggregation does not support deletion")
        if weight < 0:
            # A negative deletion would be an insertion in disguise.
            raise ValueError(f"removal weights must be non-negative, got {weight}")
        r, c = self._buckets(source, target)
        delta = weight if self.aggregation is Aggregation.SUM else 1
        self._epoch += 1
        self._matrix[r, c] -= delta

    def remove_many(self, source_keys: np.ndarray, target_keys: np.ndarray,
                    weights: np.ndarray) -> None:
        """Vectorized bulk deletion of pre-converted integer label keys.

        The expiry counterpart of :meth:`update_many` and the kernel the
        sliding-window fast path drives: one buffered scatter (see
        :mod:`repro.core.kernels`) deletes a whole batch of previously
        inserted elements.  Deletion is bit-identical to the scalar path
        for sum (the kernel replays the batch's subtractions in stream
        order per cell) and count (each element subtracts 1); min/max
        are not invertible, so -- exactly like the scalar :meth:`remove`
        -- the call raises ``ValueError`` rather than silently
        corrupting the sketch.
        """
        if not self.aggregation.invertible:
            raise ValueError(
                f"{self.aggregation.value} aggregation does not support deletion")
        source_keys = np.asarray(source_keys, dtype=np.uint64)
        target_keys = np.asarray(target_keys, dtype=np.uint64)
        weights = np.asarray(weights, dtype=self._matrix.dtype)
        if weights.size and (weights < 0).any():
            bad = float(weights[weights < 0][0])
            raise ValueError(f"removal weights must be non-negative, got {bad}")
        if len(source_keys) == 0:
            return
        if not self.directed:
            source_keys, target_keys = (np.minimum(source_keys, target_keys),
                                        np.maximum(source_keys, target_keys))
        self._epoch += 1
        rows = self._row_hash.hash_many(source_keys)
        cols = self._col_hash.hash_many(target_keys)
        self._scatter(rows, cols,
                      weights if self.aggregation is Aggregation.SUM else None,
                      insert=False)

    def update_many(self, source_keys: np.ndarray, target_keys: np.ndarray,
                    weights: np.ndarray,
                    source_labels: Optional[Sequence[Label]] = None,
                    target_labels: Optional[Sequence[Label]] = None) -> None:
        """Vectorized bulk ingest of pre-converted integer label keys.

        Bit-identical to calling :meth:`update` once per element, for every
        aggregation: sum/count go through the active backend's buffered
        scatter-add (see :mod:`repro.core.kernels` -- the kernel folds
        each cell's additions in stream order, so float rounding matches
        the scalar path exactly), min/max through its sort-based segment
        extreme (min/max of the same floats is one of the inputs, so no
        rounding is involved at all).

        Extended sketches (``keep_labels=True``) additionally need the
        original label objects to materialize per-bucket label sets; pass
        them via ``source_labels``/``target_labels`` (the keys alone are
        one-way).  Bookkeeping is deduplicated per distinct label per
        chunk, so repeated labels cost one set insertion instead of one
        per element.
        """
        source_keys = np.asarray(source_keys, dtype=np.uint64)
        target_keys = np.asarray(target_keys, dtype=np.uint64)
        weights = np.asarray(weights, dtype=self._matrix.dtype)
        if weights.size and (weights < 0).any():
            bad = float(weights[weights < 0][0])
            raise ValueError(f"stream weights must be non-negative, got {bad}")
        if self._row_labels is not None and (source_labels is None
                                             or target_labels is None):
            raise ValueError(
                "this sketch materializes labels (keep_labels=True); "
                "update_many needs source_labels/target_labels too")
        if source_labels is not None and self._row_labels is not None:
            self._record_labels_bulk(source_keys, source_labels,
                                     self._row_hash, self._row_labels)
            self._record_labels_bulk(target_keys, target_labels,
                                     self._col_hash, self._col_labels)
        if not self.directed:
            # Label-canonical orientation, matching _buckets().  Applied
            # after label bookkeeping, which uses the original orientation.
            source_keys, target_keys = (np.minimum(source_keys, target_keys),
                                        np.maximum(source_keys, target_keys))
        self._epoch += 1
        rows = self._row_hash.hash_many(source_keys)
        cols = self._col_hash.hash_many(target_keys)
        self._scatter(rows, cols,
                      weights if self.aggregation is not Aggregation.COUNT
                      else None,
                      insert=True)

    def _scatter(self, rows: np.ndarray, cols: np.ndarray,
                 weights: Optional[np.ndarray], insert: bool = True) -> None:
        """Dispatch one pre-hashed batch to the active scatter kernel.

        ``weights is None`` means unit weights (count aggregation, or an
        unweighted sum), which lets the backend take its pure-count fast
        path.  Callers bump the epoch and validate; this only mutates the
        matrix.  Non-float64 matrices keep the legacy unbuffered ufunc
        scatter -- the bincount kernels accumulate in float64 and would
        round differently on narrower dtypes.
        """
        agg = self.aggregation
        matrix = self._matrix
        if matrix.dtype != np.float64:
            self._scatter_legacy(rows, cols, weights, insert)
            return
        backend = _kernels.get_backend()
        if agg is Aggregation.SUM or agg is Aggregation.COUNT:
            values = weights if agg is Aggregation.SUM else None
            if insert:
                backend.scatter_add(matrix, rows, cols, values)
            else:
                backend.scatter_sub(matrix, rows, cols, values)
        else:
            backend.scatter_extreme(matrix, self._touched, rows, cols,
                                    weights, agg is Aggregation.MIN)

    def _scatter_legacy(self, rows: np.ndarray, cols: np.ndarray,
                        weights: Optional[np.ndarray], insert: bool) -> None:
        """Unbuffered ufunc.at scatter for non-float64 matrices."""
        if self.aggregation in (Aggregation.SUM, Aggregation.COUNT):
            values = (weights if self.aggregation is Aggregation.SUM
                      else np.ones(len(rows), dtype=self._matrix.dtype))
            if insert:
                np.add.at(self._matrix, (rows, cols), values)
            else:
                np.subtract.at(self._matrix, (rows, cols), values)
        else:
            # Cells first touched in this chunk start from the min/max
            # identity so the unbuffered ufunc leaves exactly the chunk's
            # extreme there -- the same value the scalar path's
            # "untouched -> overwrite" branch produces.
            identity = (np.inf if self.aggregation is Aggregation.MIN
                        else -np.inf)
            fresh = ~self._touched[rows, cols]
            if fresh.any():
                self._matrix[rows[fresh], cols[fresh]] = identity
            if self.aggregation is Aggregation.MIN:
                np.minimum.at(self._matrix, (rows, cols), weights)
            else:
                np.maximum.at(self._matrix, (rows, cols), weights)
            self._touched[rows, cols] = True

    def _apply_keys_fused(self, backend: "_kernels.KernelBackend",
                          source_keys: np.ndarray, target_keys: np.ndarray,
                          weights: Optional[np.ndarray],
                          insert: bool = True) -> None:
        """Single-pass key->hash->cell ingest on a fused backend.

        Keys must already be in canonical orientation for undirected
        sketches and validated; used by the TCM column fast path when the
        active backend compiles the whole pipeline (numba).
        """
        agg = self.aggregation
        if agg is Aggregation.SUM:
            values = (weights if weights is not None
                      else np.ones(source_keys.shape[0], dtype=np.float64))
            op = 0 if insert else 1
        elif agg is Aggregation.COUNT:
            values = np.ones(source_keys.shape[0], dtype=np.float64)
            op = 0 if insert else 1
        elif agg is Aggregation.MIN:
            values, op = weights, 2
        else:
            values, op = weights, 3
        self._epoch += 1
        backend.fused_ingest(self._matrix, self._touched, self._row_hash,
                             self._col_hash, source_keys, target_keys,
                             values, op)

    @staticmethod
    def _record_labels_bulk(keys: np.ndarray, labels: Sequence[Label],
                            hash_fn: PairwiseHash,
                            label_map: Dict[int, Set[Label]]) -> None:
        """Materialize a chunk's labels into per-bucket sets.

        Deduplicates by label object first (a chunk typically repeats hot
        labels thousands of times), then buckets the distinct survivors
        with one vectorized hash pass.
        """
        first_index: Dict[Label, int] = {}
        for i, label in enumerate(labels):
            if label not in first_index:
                first_index[label] = i
        if not first_index:
            return
        distinct = list(first_index.keys())
        buckets = hash_fn.hash_many(
            keys[np.fromiter(first_index.values(), dtype=np.intp,
                             count=len(first_index))])
        for bucket, label in zip(buckets.tolist(), distinct):
            label_map.setdefault(bucket, set()).add(label)

    def raise_cells_to(self, source_keys: np.ndarray,
                       target_keys: np.ndarray,
                       floors: np.ndarray) -> None:
        """Batched :meth:`raise_cell_to`: lift each edge's cell to its floor.

        The kernel behind chunked conservative update.  When several edges
        in the batch share a cell, the cell ends at the maximum of their
        floors -- the same fixed point per-edge raising reaches for floors
        computed against a common pre-batch state.
        """
        if self.aggregation is not Aggregation.SUM:
            raise ValueError("conservative update requires sum aggregation")
        source_keys = np.asarray(source_keys, dtype=np.uint64)
        target_keys = np.asarray(target_keys, dtype=np.uint64)
        if not self.directed:
            source_keys, target_keys = (np.minimum(source_keys, target_keys),
                                        np.maximum(source_keys, target_keys))
        rows = self._row_hash.hash_many(source_keys)
        cols = self._col_hash.hash_many(target_keys)
        self._epoch += 1
        floors = np.asarray(floors, dtype=self._matrix.dtype)
        if self._matrix.dtype == np.float64:
            _kernels.get_backend().scatter_floor(self._matrix, rows, cols,
                                                 floors)
        else:
            np.maximum.at(self._matrix, (rows, cols), floors)

    # -- point estimates -----------------------------------------------------

    def edge_estimate(self, source: Label, target: Label) -> float:
        """Estimated aggregated weight of edge ``(source, target)``."""
        return float(self._matrix[self._buckets(source, target)])

    def edge_estimates(self, source_keys: np.ndarray,
                       target_keys: np.ndarray) -> np.ndarray:
        """Vectorized point estimates for many edges at once.

        Takes pre-converted integer label keys (see :func:`label_keys`)
        and returns one estimate per pair.  This is the batch counterpart
        of :meth:`edge_estimate` and the query-side analogue of
        :meth:`update_many`.
        """
        source_keys = np.asarray(source_keys, dtype=np.uint64)
        target_keys = np.asarray(target_keys, dtype=np.uint64)
        if not self.directed:
            source_keys, target_keys = (np.minimum(source_keys, target_keys),
                                        np.maximum(source_keys, target_keys))
        rows = self._row_hash.hash_many(source_keys)
        cols = self._col_hash.hash_many(target_keys)
        return self._matrix[rows, cols].astype(np.float64)

    def out_flow(self, source: Label) -> float:
        """Estimated out-flow of a node: its row sum (Section 4.2)."""
        if not self.directed:
            raise ValueError("out_flow() is directed-only; use flow()")
        return float(self._matrix[self._row_hash(source), :].sum())

    def in_flow(self, target: Label) -> float:
        """Estimated in-flow of a node: its column sum (Section 4.2)."""
        if not self.directed:
            raise ValueError("in_flow() is directed-only; use flow()")
        return float(self._matrix[:, self._col_hash(target)].sum())

    def flow(self, node: Label) -> float:
        """Estimated undirected node flow ``f_v(a, -)``.

        With canonical single-cell storage a node's incident weight is its
        row sum plus its column sum minus the diagonal cell (which the two
        sums count twice).
        """
        if self.directed:
            raise ValueError("flow() is for undirected sketches; "
                             "use in_flow/out_flow")
        b = self._row_hash(node)
        return float(self._matrix[b, :].sum() + self._matrix[:, b].sum()
                     - self._matrix[b, b])

    # -- bulk read accessors (query-engine kernels) ---------------------------

    def row_sums(self) -> np.ndarray:
        """All row sums at once -- ``row_sums()[row_of(x)] == out_flow(x)``."""
        return self._matrix.sum(axis=1, dtype=np.float64)

    def col_sums(self) -> np.ndarray:
        """All column sums at once -- the batch counterpart of in_flow."""
        return self._matrix.sum(axis=0, dtype=np.float64)

    def diagonal(self) -> np.ndarray:
        """The matrix diagonal (self-loop cells) as a fresh array."""
        return np.diagonal(self._matrix).astype(np.float64)

    def positive_cells(self) -> Tuple[np.ndarray, np.ndarray]:
        """Row/column indices of every cell with positive weight.

        The backend-agnostic adjacency extraction the query engine builds
        its connectivity indexes from; undirected sketches return the
        canonical (stored) orientation only -- symmetrize downstream.
        """
        return np.nonzero(self._matrix > 0)

    # -- graph topology (graphical sketches only) ----------------------------

    def successors(self, bucket: int) -> np.ndarray:
        """Buckets with a positive-weight edge out of ``bucket``.

        Undirected sketches return all neighbours (row and column side of
        the canonical triangle).
        """
        self._require_graphical("successors")
        forward = self._matrix[bucket, :] > 0
        if self.directed:
            return np.nonzero(forward)[0]
        return np.nonzero(forward | (self._matrix[:, bucket] > 0))[0]

    def predecessors(self, bucket: int) -> np.ndarray:
        """Buckets with a positive-weight edge into ``bucket``."""
        self._require_graphical("predecessors")
        backward = self._matrix[:, bucket] > 0
        if self.directed:
            return np.nonzero(backward)[0]
        return np.nonzero(backward | (self._matrix[bucket, :] > 0))[0]

    def bucket_edge_weight(self, r: int, c: int) -> float:
        """Aggregated weight between two buckets.

        Undirected sketches store an unordered edge in whichever of the
        two cells its label-canonical orientation selects, so the
        super-edge weight between buckets ``r`` and ``c`` is the sum of
        both cells (they hold disjoint edge sets).
        """
        if self.directed or r == c:
            return float(self._matrix[r, c])
        return float(self._matrix[r, c] + self._matrix[c, r])

    def _require_graphical(self, operation: str) -> None:
        if not self._graphical:
            raise ValueError(
                f"{operation}() needs a graphical (square, single-hash) "
                "sketch; this sketch is non-square")

    def raise_cell_to(self, source: Label, target: Label,
                      floor: float) -> None:
        """Raise the element's cell to at least ``floor`` (no-op if higher).

        The primitive behind conservative update (see
        :meth:`repro.core.tcm.TCM.update_conservative`): instead of
        adding to every sketch, each cell is only lifted to the smallest
        value consistent with the new element, which provably never
        under-counts and empirically collides much less.
        """
        if self.aggregation is not Aggregation.SUM:
            raise ValueError("conservative update requires sum aggregation")
        r, c = self._buckets(source, target)
        if self._matrix[r, c] < floor:
            self._epoch += 1
            self._matrix[r, c] = floor

    def total_mass(self) -> float:
        """Sum of all cell values (total absorbed weight for sum/count)."""
        return float(self._matrix.sum())

    # -- mergeability ---------------------------------------------------------

    def compatible_with(self, other: "GraphSketch") -> bool:
        """Whether two sketches summarize into identical bucket spaces.

        Compatible sketches were built with the *same* hash functions,
        directedness and aggregation -- e.g. the same configuration fed
        by two shards of a stream.
        """
        return (self._row_hash == other._row_hash
                and self._col_hash == other._col_hash
                and self.directed == other.directed
                and self.aggregation == other.aggregation)

    def merge_from(self, other: "GraphSketch") -> None:
        """Fold another compatible sketch into this one, in place.

        After the merge, this sketch equals the sketch of the two input
        streams concatenated -- the standard sketch mergeability property
        that makes sharded/windowed summarization possible (sum and count
        add; min/max combine cell-wise).
        """
        if not self.compatible_with(other):
            raise ValueError("cannot merge sketches built with different "
                             "hashes, direction or aggregation")
        self._epoch += 1
        if self.aggregation in (Aggregation.SUM, Aggregation.COUNT):
            self._matrix += other._matrix
        elif self.aggregation is Aggregation.MIN:
            both = self._touched & other._touched
            self._matrix = np.where(
                both, np.minimum(self._matrix, other._matrix),
                np.where(other._touched, other._matrix, self._matrix))
            self._touched |= other._touched
        else:  # MAX
            both = self._touched & other._touched
            self._matrix = np.where(
                both, np.maximum(self._matrix, other._matrix),
                np.where(other._touched, other._matrix, self._matrix))
            self._touched |= other._touched
        if self._row_labels is not None:
            if other._row_labels is None:
                raise ValueError("cannot merge a plain sketch into an "
                                 "extended one (labels would be lost)")
            for bucket, labels in other._row_labels.items():
                self._row_labels.setdefault(bucket, set()).update(labels)
            if self._col_labels is not self._row_labels:
                for bucket, labels in other._col_labels.items():
                    self._col_labels.setdefault(bucket, set()).update(labels)

    # -- maintenance ---------------------------------------------------------

    def scale_by(self, factor: float) -> None:
        """Multiply every cell by ``factor`` -- O(cells), epoch-bumping.

        The backend-agnostic primitive behind the decay layer's
        renormalization (:class:`repro.core.decay.TimeDecayedTCM`): sum
        aggregation is linear, so folding a running scale into the cells
        preserves every estimate while keeping magnitudes in the float
        sweet spot.  Only meaningful for sum aggregation.
        """
        if self.aggregation is not Aggregation.SUM:
            raise ValueError("scale_by requires sum aggregation")
        if factor < 0:
            raise ValueError(f"scale factor must be non-negative, got {factor}")
        self._epoch += 1
        self._matrix *= factor

    def clear(self) -> None:
        """Reset the sketch to its freshly-constructed state."""
        self._epoch += 1
        self._matrix.fill(0)
        if self._touched is not None:
            self._touched.fill(False)
        if self._row_labels is not None:
            self._row_labels.clear()
            if self._col_labels is not self._row_labels:
                self._col_labels.clear()

    def __repr__(self) -> str:
        kind = "graphical" if self._graphical else "non-square"
        return (f"GraphSketch({self.rows}x{self.cols}, {kind}, "
                f"{'directed' if self.directed else 'undirected'}, "
                f"agg={self.aggregation.value})")


#: Re-exported here for backwards compatibility; the implementation (with
#: its interning cache) lives in :mod:`repro.hashing.labels`.
label_keys = _label_keys
