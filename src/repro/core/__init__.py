"""The paper's primary contribution: the TCM graphical sketch.

- :class:`~repro.core.graph_sketch.GraphSketch` -- one hashed adjacency
  matrix (square or non-square), optionally *extended* with materialized
  node labels (paper Section 5.1.4).
- :class:`~repro.core.tcm.TCM` -- the full summary: ``d`` graph sketches
  under pairwise-independent hash functions, with min/conjunction merging.
- :mod:`~repro.core.queries` -- subgraph query terms, including wildcards
  ``*`` and bound wildcards ``*_j`` (paper Section 4.4 extensions).
- :mod:`~repro.core.heavy_hitters` -- Algorithm 1, conditional heavy
  hitters.
- :mod:`~repro.core.triangles` -- Algorithm 2, heavy triangle connections.
"""

from repro.core.aggregation import Aggregation
from repro.core.graph_sketch import GraphSketch
from repro.core.tcm import TCM
from repro.core.queries import BoundWildcard, SubgraphQuery, Wildcard, WILDCARD
from repro.core.heavy_hitters import (
    ConditionalHeavyHitterMonitor,
    HeavyEdgeMonitor,
    HeavyNodeMonitor,
)
from repro.core.compare import (
    sketch_distance,
    top_changed_cells,
    top_changed_edges,
)
from repro.core.decay import TimeDecayedTCM
from repro.core.filter import SketchFilteredStore
from repro.core.serialization import load_tcm, save_tcm
from repro.core.snapshots import SnapshotRing
from repro.core.tensor import TensorSketch
from repro.core.triangles import heavy_triangle_connections

__all__ = [
    "Aggregation",
    "GraphSketch",
    "TCM",
    "Wildcard",
    "BoundWildcard",
    "WILDCARD",
    "SubgraphQuery",
    "HeavyEdgeMonitor",
    "HeavyNodeMonitor",
    "ConditionalHeavyHitterMonitor",
    "heavy_triangle_connections",
    "save_tcm",
    "load_tcm",
    "TensorSketch",
    "SnapshotRing",
    "SketchFilteredStore",
    "TimeDecayedTCM",
    "sketch_distance",
    "top_changed_cells",
    "top_changed_edges",
]
