"""Edge-weight aggregation strategies.

Paper Section 3.3: the weight of a sketch edge is an aggregation of all
stream-edge weights hashed onto it -- ``sum`` by default, but ``min``,
``max``, ``count`` (and others) are equally valid; which one to use is
application-determined.

The choice of aggregation dictates two other behaviours that the rest of
the library needs to know about:

- *merge direction*: how estimates from ``d`` independent sketches combine.
  ``sum``/``count``/``max`` over-approximate under collisions, so the best
  combined estimate is the **minimum** across sketches; ``min``
  under-approximates, so the combined estimate is the **maximum**.
- *invertibility*: only ``sum`` and ``count`` support deletions (sliding
  windows); ``min``/``max`` are not invertible.
"""

from __future__ import annotations

import enum


class Aggregation(enum.Enum):
    """How stream-edge weights collapse into one sketch-cell value."""

    SUM = "sum"
    COUNT = "count"
    MIN = "min"
    MAX = "max"

    @property
    def invertible(self) -> bool:
        """Whether deletions (weight decrements) are supported."""
        return self in (Aggregation.SUM, Aggregation.COUNT)

    @property
    def overestimates(self) -> bool:
        """Whether hash collisions can only inflate a cell value.

        True for sum/count/max; false for min (collisions deflate).
        The TCM merge uses ``min`` across sketches when this is true and
        ``max`` when it is false.
        """
        return self is not Aggregation.MIN

    def merge(self, estimates) -> float:
        """Combine per-sketch estimates into the final answer."""
        return min(estimates) if self.overestimates else max(estimates)
