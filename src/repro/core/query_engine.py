"""Batched, cache-backed query engine over the sketch ensemble.

TCM's selling point over linear sketches is that connectivity queries run
*directly on the summary* -- but running a fresh Python BFS per call
throws that advantage away at serving time.  This module is the query
half of the performance story (the ingest half is the chunked engine in
:mod:`repro.core.tcm`): it maintains **epoch-cached reachability
indexes** and **vectorized batch kernels** so steady-state queries cost
one numpy gather instead of a graph traversal.

Architecture
------------

Every sketch carries a monotone ``epoch`` counter bumped by each mutation
(:attr:`GraphSketch.epoch`).  The engine keeps one :class:`_SketchState`
per constituent sketch, stamped with the epoch it was built at; any
epoch mismatch discards the whole state (an *invalidation*) and the next
query lazily rebuilds just the structures it needs:

``connectivity``
    For undirected graphical sketches: union-find over the buckets
    touched by positive cells, collapsed to a component-id vector --
    ``reachable`` becomes one equality check.  For directed sketches:
    Tarjan SCC condensation plus a packed-bitset (``np.packbits``
    layout) transitive closure over the condensed DAG -- ``reachable``
    becomes one bit probe.  When the condensation is larger than
    ``max_closure_nodes`` the quadratic closure is skipped and queries
    fall back to memoized per-source BFS over the (much smaller)
    condensed DAG; see docs/PERFORMANCE.md for the cost model.

``row_sums`` / ``col_sums`` / ``diagonal``
    Flow vectors, gathered per batch with one fancy index per sketch.

``weight_matrix`` / ``distances``
    The bucket-level weight matrix (``inf`` where no edge) and per-source
    shortest-path distance vectors computed by numpy frontier relaxation
    (Bellman-Ford on the bucket matrix); repeated sources hit the
    distance cache.

All kernels are **answer-identical to the scalar paths**: the scalar TCM
query methods delegate here, so there is exactly one implementation of
each estimate.  Cache hits/misses/invalidations are counted locally
(:meth:`QueryEngine.cache_stats`) and exported through :mod:`repro.obs`
when instrumentation is enabled.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hashing.labels import Label, label_keys
from repro.obs.instruments import OBS

#: Above this many SCCs the O(n^2)-bit transitive closure is skipped in
#: favour of memoized BFS on the condensed DAG (docs/PERFORMANCE.md).
DEFAULT_MAX_CLOSURE_NODES = 4096

#: Cap on memoized shortest-path sources (and BFS frontiers) per sketch,
#: bounding steady-state cache memory at ``cap * w`` floats.
DEFAULT_MAX_CACHED_SOURCES = 1024

#: Below this many keys per batch the scalar Mersenne hash beats the
#: vectorized one (whose uint64 split-multiply has a fixed setup cost),
#: keeping the delegating scalar APIs -- batches of one -- fast.
_SMALL_BATCH = 16


def _buckets_of(hash_fn, keys: np.ndarray) -> np.ndarray:
    """Bucket a key array, switching to scalar hashing for tiny batches."""
    if len(keys) >= _SMALL_BATCH:
        return hash_fn.hash_many(keys)
    return np.fromiter((hash_fn.hash_int(int(k)) for k in keys),
                       dtype=np.int64, count=len(keys))


# ---------------------------------------------------------------------------
# Connectivity index construction
# ---------------------------------------------------------------------------


def _csr(n_nodes: int, rows: np.ndarray,
         cols: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Compressed adjacency: (indptr, flat successor array)."""
    order = np.argsort(rows, kind="stable")
    indptr = np.zeros(n_nodes + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=n_nodes), out=indptr[1:])
    return indptr, cols[order]


def _undirected_components(n_nodes: int, rows: np.ndarray,
                           cols: np.ndarray) -> np.ndarray:
    """Union-find components over the symmetrized positive cells."""
    parent = list(range(n_nodes))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]  # path halving
            x = parent[x]
        return x

    for r, c in zip(rows.tolist(), cols.tolist()):
        root_r, root_c = find(r), find(c)
        if root_r != root_c:
            parent[root_r] = root_c
    comp = np.fromiter((find(i) for i in range(n_nodes)),
                       dtype=np.int64, count=n_nodes)
    # Relabel roots to consecutive component ids.
    return np.unique(comp, return_inverse=True)[1]


def _tarjan_components(n_nodes: int, rows: np.ndarray,
                       cols: np.ndarray) -> Tuple[np.ndarray, int]:
    """Iterative Tarjan SCC; component ids are in emission order.

    Tarjan pops an SCC only after everything reachable from it has been
    popped, so component ``k`` can only reach components with id < k --
    exactly the topological order the closure builder needs.
    """
    indptr, adjacency = _csr(n_nodes, rows, cols)
    index = [-1] * n_nodes
    low = [0] * n_nodes
    on_stack = [False] * n_nodes
    comp = np.full(n_nodes, -1, dtype=np.int64)
    stack: List[int] = []
    counter = 0
    n_comp = 0
    for root in range(n_nodes):
        if index[root] != -1:
            continue
        work: List[List[int]] = [[root, int(indptr[root])]]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, cursor = work[-1]
            end = int(indptr[node + 1])
            advanced = False
            while cursor < end:
                succ = int(adjacency[cursor])
                cursor += 1
                if index[succ] == -1:
                    work[-1][1] = cursor
                    index[succ] = low[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    work.append([succ, int(indptr[succ])])
                    advanced = True
                    break
                if on_stack[succ] and index[succ] < low[node]:
                    low[node] = index[succ]
            if advanced:
                continue
            if low[node] == index[node]:
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    comp[member] = n_comp
                    if member == node:
                        break
                n_comp += 1
            work.pop()
            if work and low[node] < low[work[-1][0]]:
                low[work[-1][0]] = low[node]
    return comp, n_comp


def _packed_closure(n_comp: int, edges: np.ndarray) -> np.ndarray:
    """Packed-bitset transitive closure of the condensed DAG.

    Rows follow ``np.packbits``'s big-endian bit layout: component ``t``
    is bit ``7 - (t & 7)`` of byte ``t >> 3``.  Because component ids are
    in reverse-topological (Tarjan emission) order, one increasing-id
    sweep OR-ing each component's direct successors' finished rows
    completes the closure.
    """
    width_bytes = max(1, (n_comp + 7) // 8)
    closure = np.zeros((n_comp, width_bytes), dtype=np.uint8)
    ids = np.arange(n_comp)
    closure[ids, ids >> 3] |= (np.uint8(0x80) >> (ids & 7)).astype(np.uint8)
    if len(edges):
        indptr, targets = _csr(n_comp, edges[:, 0], edges[:, 1])
        for c in range(n_comp):
            lo, hi = int(indptr[c]), int(indptr[c + 1])
            if lo != hi:
                closure[c] |= np.bitwise_or.reduce(closure[targets[lo:hi]],
                                                   axis=0)
    return closure


class ConnectivityIndex:
    """Epoch-snapshot reachability structure for one graphical sketch.

    Three shapes, picked at build time:

    - undirected: component-id vector only (union-find result);
    - directed, condensation <= ``max_closure_nodes``: component ids +
      packed-bitset closure, O(1) probes;
    - directed, larger: component ids + condensed successor lists, with
      per-source memoized BFS probes.
    """

    __slots__ = ("components", "n_components", "closure", "successors",
                 "directed", "_reachable_sets", "_max_cached_sources")

    def __init__(self, components: np.ndarray, n_components: int,
                 closure: Optional[np.ndarray],
                 successors: Optional[Tuple[np.ndarray, np.ndarray]],
                 directed: bool,
                 max_cached_sources: int = DEFAULT_MAX_CACHED_SOURCES):
        self.components = components
        self.n_components = n_components
        self.closure = closure
        self.successors = successors
        self.directed = directed
        self._reachable_sets: Dict[int, np.ndarray] = {}
        self._max_cached_sources = max_cached_sources

    def nbytes(self) -> int:
        """Bytes held by this index's arrays and memoized BFS rows."""
        total = self.components.nbytes
        if self.closure is not None:
            total += self.closure.nbytes
        if self.successors is not None:
            total += sum(a.nbytes for a in self.successors)
        total += sum(row.nbytes for row in self._reachable_sets.values())
        return total

    def _bfs_component_closure(self, comp: int) -> np.ndarray:
        """Boolean reachability row of one component (memoized)."""
        cached = self._reachable_sets.get(comp)
        if cached is not None:
            return cached
        indptr, targets = self.successors
        seen = np.zeros(self.n_components, dtype=bool)
        seen[comp] = True
        frontier = [comp]
        while frontier:
            node = frontier.pop()
            for succ in targets[indptr[node]:indptr[node + 1]].tolist():
                if not seen[succ]:
                    seen[succ] = True
                    frontier.append(succ)
        if len(self._reachable_sets) < self._max_cached_sources:
            self._reachable_sets[comp] = seen
        return seen

    def query_many(self, source_buckets: np.ndarray,
                   target_buckets: np.ndarray) -> np.ndarray:
        """Element-wise reachability between bucket arrays."""
        cs = self.components[source_buckets]
        ct = self.components[target_buckets]
        if not self.directed:
            return cs == ct
        if self.closure is not None:
            bits = self.closure[cs, ct >> 3] >> (7 - (ct & 7)).astype(np.uint8)
            return (bits & 1).astype(bool)
        result = np.zeros(len(cs), dtype=bool)
        for comp in np.unique(cs).tolist():
            mask = cs == comp
            result[mask] = self._bfs_component_closure(comp)[ct[mask]]
        return result


def build_connectivity_index(
        sketch, *, max_closure_nodes: int = DEFAULT_MAX_CLOSURE_NODES,
        max_cached_sources: int = DEFAULT_MAX_CACHED_SOURCES,
) -> ConnectivityIndex:
    """Build the reachability index of one graphical sketch.

    Standalone entry point (also used by
    :func:`repro.analytics.reachability.reach_many`); the engine wraps it
    with epoch caching.
    """
    if not sketch.is_graphical:
        raise ValueError("connectivity indexes need a graphical "
                         "(square, single-hash) sketch")
    n_nodes = sketch.rows
    rows, cols = sketch.positive_cells()
    if not sketch.directed:
        comp = _undirected_components(
            n_nodes, np.concatenate((rows, cols)),
            np.concatenate((cols, rows)))
        return ConnectivityIndex(comp, int(comp.max()) + 1 if n_nodes else 0,
                                 None, None, directed=False)
    comp, n_comp = _tarjan_components(n_nodes, rows, cols)
    cu, cv = comp[rows], comp[cols]
    cross = cu != cv
    if cross.any():
        edges = np.unique(np.column_stack((cu[cross], cv[cross])), axis=0)
    else:
        edges = np.zeros((0, 2), dtype=np.int64)
    if n_comp <= max_closure_nodes:
        return ConnectivityIndex(comp, n_comp, _packed_closure(n_comp, edges),
                                 None, directed=True)
    successors = _csr(n_comp, edges[:, 0], edges[:, 1])
    return ConnectivityIndex(comp, n_comp, None, successors, directed=True,
                             max_cached_sources=max_cached_sources)


# ---------------------------------------------------------------------------
# Shortest-path frontier relaxation
# ---------------------------------------------------------------------------


def bucket_weight_matrix(sketch) -> np.ndarray:
    """The bucket-level edge-weight matrix with ``inf`` where no edge.

    Matches :meth:`GraphSketch.bucket_edge_weight`: undirected sketches
    sum the two canonical cells per unordered bucket pair (they hold
    disjoint edge sets), keeping the diagonal counted once.  Non-positive
    cells are *no edge* -- the same predicate Dijkstra on a
    :class:`SketchView` applies.
    """
    dense = np.asarray(sketch.matrix, dtype=np.float64)
    if not sketch.directed:
        symmetric = dense + dense.T
        np.fill_diagonal(symmetric, np.diagonal(dense))
        dense = symmetric
    return np.where(dense > 0, dense, np.inf)


def relax_distances(weight_matrix: np.ndarray, source: int) -> np.ndarray:
    """Single-source shortest-path distances by numpy frontier relaxation.

    Bellman-Ford on the bucket matrix: each sweep relaxes every edge at
    once (``min over u of dist[u] + W[u, :]``) until a fixpoint, which
    arrives after at most ``w`` sweeps -- and in practice after
    (diameter + 1).  Distances accumulate left-to-right along each path
    exactly like Dijkstra's relaxations, so values are bit-identical to
    the scalar path.
    """
    n = weight_matrix.shape[0]
    distances = np.full(n, np.inf)
    distances[source] = 0.0
    for _ in range(n):
        relaxed = np.minimum(
            distances, np.min(distances[:, None] + weight_matrix, axis=0))
        if np.array_equal(relaxed, distances):
            break
        distances = relaxed
    return distances


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class _SketchState:
    """Everything cached for one sketch at one epoch."""

    __slots__ = ("epoch", "connectivity", "row_sums", "col_sums",
                 "diagonal", "weight_matrix", "distances")

    def __init__(self, epoch: int):
        self.epoch = epoch
        self.connectivity: Optional[ConnectivityIndex] = None
        self.row_sums: Optional[np.ndarray] = None
        self.col_sums: Optional[np.ndarray] = None
        self.diagonal: Optional[np.ndarray] = None
        self.weight_matrix: Optional[np.ndarray] = None
        self.distances: Dict[int, np.ndarray] = {}


class QueryEngine:
    """Batched query kernels with epoch-keyed per-sketch caches.

    Owned by a :class:`~repro.core.tcm.TCM` (the lazy
    :attr:`~repro.core.tcm.TCM.query_engine` property); all scalar TCM
    query methods delegate to these kernels so the batch and scalar
    paths share one implementation.
    """

    def __init__(self, tcm, *,
                 max_closure_nodes: int = DEFAULT_MAX_CLOSURE_NODES,
                 max_cached_sources: int = DEFAULT_MAX_CACHED_SOURCES):
        self._tcm = tcm
        self.max_closure_nodes = max_closure_nodes
        self.max_cached_sources = max_cached_sources
        self._states: List[Optional[_SketchState]] = [None] * tcm.d
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def cache_stats(self) -> Dict[str, int]:
        """Local hit/miss/invalidation counters (obs-independent)."""
        return {"hits": self.hits, "misses": self.misses,
                "invalidations": self.invalidations}

    def cache_bytes(self) -> int:
        """Bytes held by every live epoch cache across the ensemble.

        Sums the numpy footprint of each cached structure -- connectivity
        indexes (component vectors, packed closures, CSR successor lists,
        memoized BFS rows), flow vectors, weight matrices and memoized
        distance vectors.  This is the ``query_engine_cache_bytes`` gauge
        and the delta :meth:`TCM.memory_bytes` adds on top of the raw
        sketch matrices once the engine has been exercised.
        """
        total = 0
        for state in self._states:
            if state is None:
                continue
            if state.connectivity is not None:
                total += state.connectivity.nbytes()
            for name in ("row_sums", "col_sums", "diagonal",
                         "weight_matrix"):
                array = getattr(state, name)
                if array is not None:
                    total += array.nbytes
            total += sum(d.nbytes for d in state.distances.values())
        return total

    # -- cache plumbing ------------------------------------------------------

    def _state(self, i: int) -> _SketchState:
        sketch = self._tcm._sketches[i]
        state = self._states[i]
        if state is None or state.epoch != sketch.epoch:
            if state is not None:
                self.invalidations += 1
                if OBS.enabled:
                    OBS.query_cache_invalidations.inc()
            state = _SketchState(sketch.epoch)
            self._states[i] = state
        return state

    def _cached(self, i: int, name: str, build):
        """Fetch one epoch-keyed structure, building (and timing) on miss."""
        state = self._state(i)
        value = getattr(state, name)
        if value is None:
            self.misses += 1
            start = time.perf_counter() if OBS.enabled else 0.0
            value = build(self._tcm._sketches[i])
            setattr(state, name, value)
            if OBS.enabled:
                OBS.query_cache_misses.labels(name).inc()
                OBS.query_index_build_seconds.labels(name).observe(
                    time.perf_counter() - start)
        else:
            self.hits += 1
            if OBS.enabled:
                OBS.query_cache_hits.labels(name).inc()
        return value

    def _connectivity(self, i: int) -> ConnectivityIndex:
        return self._cached(
            i, "connectivity",
            lambda sketch: build_connectivity_index(
                sketch, max_closure_nodes=self.max_closure_nodes,
                max_cached_sources=self.max_cached_sources))

    # -- reachability --------------------------------------------------------

    def reachable_many(self, pairs: Sequence[Tuple[Label, Label]]) -> np.ndarray:
        """Element-wise estimated reachability for a batch of label pairs.

        Per sketch: hash both endpoint columns once, probe the
        connectivity index, AND across sketches (the paper's P2
        conjunction).  Inherits the scalar guarantee: never ``False`` for
        a truly reachable pair.
        """
        n = len(pairs)
        if n == 0:
            return np.zeros(0, dtype=bool)
        source_keys = label_keys([x for x, _ in pairs])
        target_keys = label_keys([y for _, y in pairs])
        result = np.ones(n, dtype=bool)
        for i, sketch in enumerate(self._tcm._sketches):
            index = self._connectivity(i)
            source_buckets = _buckets_of(sketch._row_hash, source_keys)
            target_buckets = _buckets_of(sketch._row_hash, target_keys)
            result &= index.query_many(source_buckets, target_buckets)
            if not result.any():
                break
        return result

    # -- flows ---------------------------------------------------------------

    def _merge(self, stacked: np.ndarray) -> np.ndarray:
        if self._tcm.aggregation.overestimates:
            return stacked.min(axis=0)
        return stacked.max(axis=0)

    def out_flow_many(self, nodes: Sequence[Label]) -> np.ndarray:
        """Batch out-flow estimates: one cached-row-sum gather per sketch."""
        if not self._tcm.directed:
            raise ValueError("out_flow is directed-only; use flow()")
        return self._flow_kernel(nodes, "row_sums",
                                 lambda sketch: sketch.row_sums(),
                                 lambda sketch: sketch._row_hash)

    def in_flow_many(self, nodes: Sequence[Label]) -> np.ndarray:
        """Batch in-flow estimates: one cached-column-sum gather per sketch."""
        if not self._tcm.directed:
            raise ValueError("in_flow is directed-only; use flow()")
        return self._flow_kernel(nodes, "col_sums",
                                 lambda sketch: sketch.col_sums(),
                                 lambda sketch: sketch._col_hash)

    def _flow_kernel(self, nodes, cache_name, build, hash_of) -> np.ndarray:
        if len(nodes) == 0:
            return np.zeros(0)
        keys = label_keys(nodes)
        estimates = []
        for i, sketch in enumerate(self._tcm._sketches):
            sums = self._cached(i, cache_name, build)
            estimates.append(sums[_buckets_of(hash_of(sketch), keys)])
        return self._merge(np.stack(estimates))

    def flow_many(self, nodes: Sequence[Label]) -> np.ndarray:
        """Batch undirected node flows: row sum + column sum - diagonal."""
        if self._tcm.directed:
            raise ValueError("flow() is for undirected sketches; "
                             "use in_flow/out_flow")
        if len(nodes) == 0:
            return np.zeros(0)
        keys = label_keys(nodes)
        estimates = []
        for i, sketch in enumerate(self._tcm._sketches):
            row_sums = self._cached(i, "row_sums",
                                    lambda s: s.row_sums())
            col_sums = self._cached(i, "col_sums",
                                    lambda s: s.col_sums())
            diagonal = self._cached(i, "diagonal",
                                    lambda s: s.diagonal())
            buckets = _buckets_of(sketch._row_hash, keys)
            estimates.append(row_sums[buckets] + col_sums[buckets]
                             - diagonal[buckets])
        return self._merge(np.stack(estimates))

    # -- shortest paths ------------------------------------------------------

    def _distances(self, i: int, source_bucket: int) -> np.ndarray:
        state = self._state(i)
        cached = state.distances.get(source_bucket)
        if cached is not None:
            self.hits += 1
            if OBS.enabled:
                OBS.query_cache_hits.labels("distances").inc()
            return cached
        weight_matrix = self._cached(i, "weight_matrix", bucket_weight_matrix)
        self.misses += 1
        start = time.perf_counter() if OBS.enabled else 0.0
        distances = relax_distances(weight_matrix, source_bucket)
        if len(state.distances) < self.max_cached_sources:
            state.distances[source_bucket] = distances
        if OBS.enabled:
            OBS.query_cache_misses.labels("distances").inc()
            OBS.query_index_build_seconds.labels("distances").observe(
                time.perf_counter() - start)
        return distances

    def shortest_path_weight_many(
            self, pairs: Sequence[Tuple[Label, Label]]) -> np.ndarray:
        """Batch shortest-path weights, merged ``max`` across sketches.

        ``inf`` marks pairs where some sketch finds no path (the explicit
        no-path answer); queries sharing a source bucket share one
        frontier relaxation per sketch.
        """
        n = len(pairs)
        if n == 0:
            return np.zeros(0)
        source_keys = label_keys([x for x, _ in pairs])
        target_keys = label_keys([y for _, y in pairs])
        per_sketch = np.empty((self._tcm.d, n))
        for i, sketch in enumerate(self._tcm._sketches):
            source_buckets = _buckets_of(sketch._row_hash, source_keys)
            target_buckets = _buckets_of(sketch._row_hash, target_keys)
            values = np.empty(n)
            for bucket in np.unique(source_buckets).tolist():
                mask = source_buckets == bucket
                values[mask] = self._distances(i, bucket)[target_buckets[mask]]
            per_sketch[i] = values
        return per_sketch.max(axis=0)
