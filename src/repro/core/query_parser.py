"""Textual syntax for subgraph queries.

Lets operators phrase Section 4.4 queries on the command line::

    a->b                  one directed edge
    a->b, b->c, c->a      the triangle Q4
    *->b, b->c, c->*      free wildcards (Q5)
    *1->b, b->c, c->*1    bound wildcards (Q6: both *1 are one node)
    a--b                  undirected edge (equivalent to a->b here;
                          orientation is ignored by undirected sketches)

Grammar: a query is a comma-separated list of edges; an edge is
``<term> -> <term>`` or ``<term> -- <term>`` (whitespace around the arrow
is free); a term is ``*`` (free wildcard), ``*<tag>`` (bound wildcard) or
anything else (a node label, taken verbatim -- labels may not contain
commas or the arrow tokens).
"""

from __future__ import annotations

import re
from typing import List

from repro.core.queries import (
    WILDCARD,
    BoundWildcard,
    QueryEdge,
    SubgraphQuery,
    Term,
)

_EDGE_SPLIT = re.compile(r"\s*(->|--)\s*")


class QuerySyntaxError(ValueError):
    """Raised for malformed query text, with the offending fragment."""


def _parse_term(text: str) -> Term:
    if not text:
        raise QuerySyntaxError("empty node term")
    if text == "*":
        return WILDCARD
    if text.startswith("*"):
        return BoundWildcard(text[1:])
    return text


def parse_edge(text: str) -> QueryEdge:
    """Parse one ``a->b`` / ``a--b`` fragment."""
    parts = _EDGE_SPLIT.split(text.strip())
    # re.split with a capturing group yields [lhs, arrow, rhs].
    if len(parts) != 3:
        raise QuerySyntaxError(
            f"expected '<node> -> <node>' or '<node> -- <node>', "
            f"got {text.strip()!r}")
    lhs, _, rhs = parts
    return (_parse_term(lhs), _parse_term(rhs))


def parse_subgraph_query(text: str) -> SubgraphQuery:
    """Parse a full query string into a :class:`SubgraphQuery`.

    >>> q = parse_subgraph_query("*1->b, b->c, c->*1")
    >>> q.has_bound_wildcards
    True
    >>> len(q)
    3
    """
    if not text or not text.strip():
        raise QuerySyntaxError("empty query")
    fragments: List[str] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            raise QuerySyntaxError("empty edge between commas")
        fragments.append(chunk)
    return SubgraphQuery([parse_edge(fragment) for fragment in fragments])


def format_subgraph_query(query: SubgraphQuery,
                          directed: bool = True) -> str:
    """Render a query back into the textual syntax (inverse of parsing)."""
    arrow = "->" if directed else "--"

    def term_text(term: Term) -> str:
        if isinstance(term, BoundWildcard):
            return f"*{term.tag}"
        if term is WILDCARD or repr(term) == "*":
            return "*"
        return str(term)

    return ", ".join(f"{term_text(a)}{arrow}{term_text(b)}"
                     for a, b in query)
