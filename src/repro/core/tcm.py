"""TCM: an ensemble of d graphical sketches with merged estimates.

Paper Section 3.3: a TCM is ``{S1(V1, E1), ..., Sd(Vd, Ed)}`` built with
``d`` pairwise-independent hash functions.  Any analytics method ``M``
runs per sketch and the results merge:

    M(G) ~ phi( M(S1), ..., M(Sd) )

where ``phi`` is ``min`` for weight estimates (sum aggregation
over-approximates) and boolean conjunction for reachability-style
predicates.  This module implements the summary itself plus every query
from Section 4; the streaming monitors (Algorithms 1 and 2) live in
:mod:`repro.core.heavy_hitters` and :mod:`repro.core.triangles`.
"""

from __future__ import annotations

import functools
import itertools
import math
import time
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.analytics.pagerank import pagerank as _pagerank
from repro.analytics.reachability import reach as _reach
from repro.analytics.subgraph import subgraph_weight as _subgraph_weight
from repro.analytics.triangles import count_triangles as _count_triangles
from repro.analytics.views import SketchView
from repro.core import kernels as _kernels
from repro.core.aggregation import Aggregation
from repro.core.graph_sketch import GraphSketch
from repro.core.queries import SubgraphQuery, is_wildcard
from repro.core.query_engine import QueryEngine
from repro.hashing.family import HashFamily
from repro.hashing.family import hash_many_bulk as _hash_bulk
from repro.hashing.labels import Label, label_keys
from repro.obs.instruments import OBS

#: Default ingest batch size.  Big enough to amortize numpy/hashing call
#: overheads (they flatten out around ~16k elements), small enough that a
#: chunk of label lists + three key/weight arrays stays a few MB.
DEFAULT_CHUNK_SIZE = 65536


def _timed_query(kind: str):
    """Record the wrapped query's latency under ``tcm_query_seconds{kind}``.

    Disabled observability short-circuits to the bare call after a single
    attribute check, so un-instrumented workloads pay only the wrapper
    frame.
    """
    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not OBS.enabled:
                return fn(*args, **kwargs)
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                OBS.query_seconds.labels(kind).observe(
                    time.perf_counter() - start)
        return wrapper
    return decorate


class TCM:
    """The TCM graph-stream summary.

    :param d: number of constituent sketches (hash functions).
    :param width: bucket count per side for square sketches.  Ignored when
        ``shapes`` is given.
    :param shapes: explicit per-sketch matrix shapes ``(rows, cols)``;
        square entries become graphical single-hash sketches, non-square
        entries use two hash functions (Section 5.1.2).
    :param seed: seeds the hash family; equal seeds give identical sketches.
    :param directed: whether the summarized stream is directed.
    :param aggregation: cell aggregation (default sum, Section 3.3).
    :param keep_labels: build *extended* sketches that materialize node
        labels per bucket (Section 5.1.4; needed by Algorithm 2).

    >>> tcm = TCM(d=4, width=64, seed=7)
    >>> tcm.update("a", "b", 3.0)
    >>> tcm.edge_weight("a", "b")
    3.0
    """

    def __init__(self, d: int = 4, width: int = 256, *,
                 shapes: Optional[Sequence[Tuple[int, int]]] = None,
                 seed: Optional[int] = 0,
                 directed: bool = True,
                 aggregation: Aggregation = Aggregation.SUM,
                 keep_labels: bool = False,
                 sparse: bool = False):
        if shapes is None:
            if d < 1:
                raise ValueError(f"d must be >= 1, got {d}")
            if width < 1:
                raise ValueError(f"width must be >= 1, got {width}")
            shapes = [(width, width)] * d
        if not shapes:
            raise ValueError("shapes must be non-empty")
        self.directed = directed
        self.aggregation = aggregation

        # One hash per square sketch, two per non-square sketch.
        widths: List[int] = []
        for rows, cols in shapes:
            if rows < 1 or cols < 1:
                raise ValueError(f"invalid sketch shape ({rows}, {cols})")
            if rows == cols:
                widths.append(rows)
            else:
                widths.extend((rows, cols))
        family = HashFamily(widths, seed=seed)

        if sparse:
            # The dict-backed backend (paper §5.1.1's adjacency hash-list
            # alternative); memory tracks occupancy instead of w^2.
            from repro.core.sparse import SparseGraphSketch
            sketch_class = SparseGraphSketch
        else:
            sketch_class = GraphSketch

        self._sketches: List[GraphSketch] = []
        cursor = 0
        for rows, cols in shapes:
            if rows == cols:
                sketch = sketch_class(family[cursor], directed=directed,
                                      aggregation=aggregation,
                                      keep_labels=keep_labels)
                cursor += 1
            else:
                if not directed:
                    raise ValueError(
                        "non-square shapes are only valid for directed "
                        "streams (undirected matrices must be symmetric)")
                sketch = sketch_class(family[cursor], family[cursor + 1],
                                      directed=directed,
                                      aggregation=aggregation,
                                      keep_labels=keep_labels)
                cursor += 2
            self._sketches.append(sketch)

        # Plain ensembles take the shared-hash column fast path
        # (validate/canonicalize/dedup once per chunk instead of per
        # sketch); extended sketches need per-sketch label bookkeeping,
        # so they keep the per-sketch update_many route.  The fused
        # (single-pass key->cell) kernel additionally requires dense
        # float64 matrices.
        self._column_fast_path = not keep_labels
        self._fused_eligible = not keep_labels and not sparse

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_space(cls, total_cells: int, d: int, **kwargs) -> "TCM":
        """Square TCM where *each* sketch gets ``total_cells`` cells.

        This mirrors the paper's experimental setup (Section 6.2 Exp-1(a)):
        a compression ratio of ``c`` on a stream of ``|E|`` elements gives
        each matrix ``|E| * c`` cells, i.e. width ``sqrt(|E| * c)``.
        """
        width = max(1, int(math.isqrt(total_cells)))
        return cls(d=d, width=width, **kwargs)

    @classmethod
    def with_varied_shapes(cls, total_cells: int, d: int, **kwargs) -> "TCM":
        """Non-square ensemble: ``n x n, 2n x n/2, n/2 x 2n, 4n x n/4, ...``

        The heuristic of Section 5.1.2: vary aspect ratios across sketches
        so skewed degree distributions collide differently in each.
        """
        n = max(2, int(math.isqrt(total_cells)))
        # Cap the aspect ratio so no dimension collapses below n/8: a
        # handful of rows would put most stream mass in the same row and
        # defeat the point of varying shapes on small sketches.
        max_factor = max(1, min(8, n // 8))
        shapes: List[Tuple[int, int]] = []
        for i in range(d):
            if i == 0:
                shapes.append((n, n))
            else:
                factor = min(2 ** ((i + 1) // 2), max_factor)
                if factor <= 1:
                    shapes.append((n, n))
                elif i % 2 == 1:
                    shapes.append((n * factor, max(1, n // factor)))
                else:
                    shapes.append((max(1, n // factor), n * factor))
        return cls(shapes=shapes, **kwargs)

    @classmethod
    def from_stream(cls, stream: Iterable, d: int = 4, width: int = 256,
                    **kwargs) -> "TCM":
        """Build a TCM and ingest an entire stream in one pass."""
        directed = getattr(stream, "directed", kwargs.pop("directed", True))
        tcm = cls(d=d, width=width, directed=directed, **kwargs)
        tcm.ingest(stream)
        return tcm

    # -- structure ------------------------------------------------------------

    @property
    def d(self) -> int:
        """Number of constituent sketches."""
        return len(self._sketches)

    @property
    def sketches(self) -> Tuple[GraphSketch, ...]:
        return tuple(self._sketches)

    @property
    def size_in_cells(self) -> int:
        """Total storage in matrix cells across all sketches."""
        return sum(s.size_in_cells for s in self._sketches)

    def memory_bytes(self) -> int:
        """Total memory footprint in bytes across all sketches.

        Sums each sketch's matrix storage plus its label-materialization
        storage (extended sketches); see
        :meth:`GraphSketch.memory_bytes`.  Once the lazy
        :attr:`query_engine` has been exercised, its epoch-cached index
        structures (connectivity closures, flow vectors, distance rows --
        :meth:`QueryEngine.cache_bytes`) are counted too, so this
        accessor and process RSS telemetry agree about what the summary
        actually holds.  A TCM that has never been queried reports
        exactly its matrix bytes.  Also available as :attr:`nbytes` to
        mirror numpy.
        """
        total = sum(s.memory_bytes() for s in self._sketches)
        return total + self.query_engine_cache_bytes()

    def query_engine_cache_bytes(self) -> int:
        """Bytes held by the lazy query engine's caches (0 before first use)."""
        engine = getattr(self, "_query_engine", None)
        return engine.cache_bytes() if engine is not None else 0

    def shadow_truth(self, *, sample_size: int = 256, seed: int = 0):
        """A matched shadow-truth comparator for accuracy telemetry.

        Returns a :class:`~repro.obs.accuracy.ShadowTruthComparator` with
        this summary's aggregation and directedness; feed it the same
        stream and compare via
        :class:`~repro.obs.accuracy.AccuracyTracker`.
        """
        from repro.obs.accuracy import shadow_truth_for
        return shadow_truth_for(self, sample_size=sample_size, seed=seed)

    @property
    def nbytes(self) -> int:
        return self.memory_bytes()

    @property
    def is_graphical(self) -> bool:
        """True when every sketch is a graph (square, single hash)."""
        return all(s.is_graphical for s in self._sketches)

    def views(self) -> List[SketchView]:
        """Per-sketch graph views for running black-box algorithms."""
        self._require_graphical("views")
        return [SketchView(s) for s in self._sketches]

    @property
    def query_engine(self) -> QueryEngine:
        """The batched, epoch-cached query engine over this ensemble.

        Created lazily (so deserialized and pickled TCMs get one on first
        use) and shared by every query method; see
        :mod:`repro.core.query_engine` for the caching model and
        :meth:`QueryEngine.cache_stats` for hit/miss introspection.
        """
        engine = getattr(self, "_query_engine", None)
        if engine is None:
            engine = QueryEngine(self)
            self._query_engine = engine
        return engine

    def _require_graphical(self, operation: str) -> None:
        if not self.is_graphical:
            raise ValueError(
                f"{operation} needs graphical sketches; this TCM contains "
                "non-square matrices (edge/flow estimates only)")

    # -- maintenance ------------------------------------------------------------

    def update(self, source: Label, target: Label, weight: float = 1.0) -> None:
        """Absorb one stream element into every sketch -- O(d)."""
        for sketch in self._sketches:
            sketch.update(source, target, weight)
        if OBS.enabled:
            # Direct slot bumps: this is the hottest line in the library
            # and Counter.inc()'s validation costs more than the add
            # itself (see BENCH_obs_overhead.json for the budget).
            OBS.tcm_updates._value += 1.0
            OBS.tcm_update_weight._value += weight

    def remove(self, source: Label, target: Label, weight: float = 1.0) -> None:
        """Delete one previously inserted element from every sketch.

        Deletion inverts insertion only for the linear aggregations
        (sum/count); min/max raise ``ValueError`` *before* any sketch is
        touched, so a bad call can never leave the ensemble
        half-mutated.
        """
        if not self.aggregation.invertible:
            raise ValueError(
                f"{self.aggregation.value} aggregation does not support "
                "deletion")
        for sketch in self._sketches:
            sketch.remove(source, target, weight)
        if OBS.enabled:
            OBS.tcm_removes.inc()

    def remove_many(self, sources: Sequence[Label],
                    targets: Sequence[Label],
                    weights: Optional[np.ndarray] = None) -> int:
        """Vectorized bulk deletion: the expiry mirror of :meth:`ingest_columns`.

        Accepts parallel label sequences -- or, on the window fast path,
        pre-hashed ``uint64`` key arrays (the columnar ring buffer stores
        keys, so expiry skips label conversion entirely) -- and applies
        one :meth:`GraphSketch.remove_many` scatter per sketch.
        ``weights`` defaults to all-ones.  Exactly equivalent to calling
        :meth:`remove` once per element; raises ``ValueError`` for
        non-invertible aggregations before touching any sketch.  Returns
        the number of elements deleted.
        """
        if not self.aggregation.invertible:
            raise ValueError(
                f"{self.aggregation.value} aggregation does not support "
                "deletion")
        n = len(sources)
        if len(targets) != n:
            raise ValueError(f"got {n} sources but {len(targets)} targets")
        if n == 0:
            return 0
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if len(weights) != n:
                raise ValueError(f"got {n} sources but {len(weights)} weights")
        source_keys = self._deletion_keys(sources)
        target_keys = self._deletion_keys(targets)
        if getattr(self, "_column_fast_path", False):
            self._apply_key_columns(source_keys, target_keys, weights,
                                    insert=False)
        else:
            if weights is None:
                weights = np.ones(n)
            for sketch in self._sketches:
                sketch.remove_many(source_keys, target_keys, weights)
        if OBS.enabled:
            OBS.tcm_removes.inc(n)
        return n

    @staticmethod
    def _deletion_keys(values) -> np.ndarray:
        """Label sequence or pre-hashed key array -> uint64 key array."""
        if isinstance(values, np.ndarray) and values.dtype == np.uint64:
            return values
        return label_keys(values)

    def update_conservative(self, source: Label, target: Label,
                            weight: float = 1.0) -> None:
        """Conservative update (Estan & Varghese): raise, don't add.

        The current merged estimate plus the new weight is the smallest
        value any cell must reach to keep the no-undercount guarantee, so
        every sketch's cell is only lifted to that floor instead of
        incremented.  Estimates remain over-approximations but grow far
        slower under collisions (see the ablation bench).

        Trade-offs: requires sum aggregation; the resulting summary is
        **not** linear -- deletions, merging and sliding windows no longer
        apply.  Use for insert-only workloads where accuracy matters most.
        """
        if self.aggregation is not Aggregation.SUM:
            raise ValueError("conservative update requires sum aggregation")
        if weight < 0:
            raise ValueError(f"weights must be non-negative, got {weight}")
        floor = self.edge_weight(source, target) + weight
        for sketch in self._sketches:
            sketch.raise_cell_to(source, target, floor)

    def ingest_conservative(self, stream: Iterable, *,
                            chunk_size: int = DEFAULT_CHUNK_SIZE) -> int:
        """One-pass bulk construction using conservative updates.

        Consumes the stream lazily in ``chunk_size`` batches (constant
        memory) and applies one batched conservative raise per chunk:
        the chunk is grouped by distinct (canonical) edge, each group's
        weights are summed, floors are computed as ``current ensemble
        estimate + chunk sum`` against the pre-chunk state, and every
        sketch's cells are lifted to the max floor landing on them.

        **Equivalence.**  For a repeated edge the per-element floors
        telescope -- raising every sketch's cell to ``f`` makes the
        ensemble estimate exactly ``max(f, old estimate)``, so ``k``
        consecutive updates of one edge raise it to ``estimate + w_1 +
        ... + w_k`` -- which is precisely the batched floor.  Hence the
        batched result is *identical* to per-element
        :meth:`update_conservative` whenever no two distinct edges of a
        chunk collide in a cell of any sketch (always true for
        ``chunk_size=1``).  Under within-chunk collisions the batched
        floors are computed against the pre-chunk state instead of the
        partially-raised one, so batched cells are *at most* the
        per-element cells -- estimates stay one-sided (never undercount,
        the tests assert both invariants) and collide strictly less.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if self.aggregation is not Aggregation.SUM:
            raise ValueError("conservative update requires sum aggregation")
        start = time.perf_counter() if OBS.enabled else 0.0
        count = 0
        iterator = iter(stream)
        while True:
            chunk = list(itertools.islice(iterator, chunk_size))
            if not chunk:
                break
            count += len(chunk)
            source_keys = label_keys([e.source for e in chunk])
            target_keys = label_keys([e.target for e in chunk])
            weights = np.array([e.weight for e in chunk])
            if (weights < 0).any():
                bad = float(weights[weights < 0][0])
                raise ValueError(
                    f"weights must be non-negative, got {bad}")
            if not self.directed:
                source_keys, target_keys = (
                    np.minimum(source_keys, target_keys),
                    np.maximum(source_keys, target_keys))
            pairs = np.column_stack((source_keys, target_keys))
            distinct, inverse = np.unique(pairs, axis=0, return_inverse=True)
            sums = np.bincount(inverse.ravel(), weights=weights,
                               minlength=len(distinct))
            estimates = np.stack(
                [s.edge_estimates(distinct[:, 0], distinct[:, 1])
                 for s in self._sketches]).min(axis=0)
            floors = estimates + sums
            for sketch in self._sketches:
                sketch.raise_cells_to(distinct[:, 0], distinct[:, 1], floors)
            if OBS.enabled:
                OBS.tcm_ingest_chunks.inc()
        if OBS.enabled:
            OBS.tcm_ingest_elements.inc(count)
            OBS.tcm_ingest_seconds.observe(time.perf_counter() - start)
        return count

    def ingest(self, stream: Iterable, *,
               chunk_size: int = DEFAULT_CHUNK_SIZE) -> int:
        """One-pass bulk construction from a stream of elements.

        Consumes the stream lazily in fixed-size chunks -- a generator
        stream is never materialized, so peak memory is bounded by
        ``chunk_size`` regardless of stream length -- and routes every
        chunk through the vectorized kernels
        (:meth:`GraphSketch.update_many`), which cover all aggregations,
        both backends, and extended (``keep_labels``) sketches.  Results
        are bit-identical to per-element :meth:`update` (see
        docs/PERFORMANCE.md for the engine's layout and measured rates).
        Returns the number of elements ingested.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        start = time.perf_counter() if OBS.enabled else 0.0
        count = 0
        iterator = iter(stream)
        while True:
            chunk = list(itertools.islice(iterator, chunk_size))
            if not chunk:
                break
            count += self.ingest_chunk(chunk)
        if OBS.enabled:
            OBS.tcm_ingest_elements.inc(count)
            OBS.tcm_ingest_seconds.observe(time.perf_counter() - start)
        return count

    def ingest_chunk(self, edges: Sequence) -> int:
        """Absorb one batch of stream elements through the vectorized path.

        The per-chunk kernel behind :meth:`ingest`; also usable directly
        by replay/batching layers (see
        :meth:`repro.streams.replay.MonitoringHub.replay_chunked`).
        """
        if not edges:
            return 0
        return self.ingest_columns([e.source for e in edges],
                                   [e.target for e in edges],
                                   np.array([e.weight for e in edges]))

    def ingest_columns(self, sources: Sequence[Label],
                       targets: Sequence[Label],
                       weights: Optional[np.ndarray] = None) -> int:
        """Columnar chunk ingest: parallel label/weight sequences.

        The zero-copy entry point for columnar sources (parallel workers
        ship chunks as three flat lists; benchmarks feed numpy slices).
        ``weights`` defaults to all-ones.
        """
        n = len(sources)
        if len(targets) != n:
            raise ValueError(
                f"got {n} sources but {len(targets)} targets")
        if n == 0:
            return 0
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if len(weights) != n:
                raise ValueError(
                    f"got {n} sources but {len(weights)} weights")
        source_keys = label_keys(sources)
        target_keys = label_keys(targets)
        if getattr(self, "_column_fast_path", False):
            self._apply_key_columns(source_keys, target_keys, weights,
                                    insert=True)
        else:
            if weights is None:
                weights = np.ones(n)
            for sketch in self._sketches:
                if sketch.keeps_labels:
                    sketch.update_many(source_keys, target_keys, weights,
                                       source_labels=sources,
                                       target_labels=targets)
                else:
                    sketch.update_many(source_keys, target_keys, weights)
        if OBS.enabled:
            OBS.tcm_ingest_chunks.inc()
        return n

    def ingest_keys(self, source_keys: np.ndarray,
                    target_keys: np.ndarray,
                    weights: Optional[np.ndarray] = None) -> int:
        """Pre-hashed columnar ingest: the service-layer batch entry point.

        Absorbs one batch given as parallel ``uint64`` key arrays (the
        output of :func:`repro.hashing.labels.label_keys`) plus optional
        ``float64`` weights, skipping label conversion entirely -- the
        micro-batching coalescer in :mod:`repro.server` hashes labels
        once at request-parse time, stages raw keys, and flushes whole
        batches through this method.  Bit-identical to
        :meth:`ingest_columns` over the same labels: ``label_keys`` is
        deterministic, so staging keys instead of labels changes nothing
        downstream.  Requires a plain (non-extended) ensemble; extended
        (``keep_labels=True``) sketches need the original labels and
        must use :meth:`ingest_columns`.  Returns the batch size.
        """
        source_keys = np.asarray(source_keys)
        target_keys = np.asarray(target_keys)
        if source_keys.dtype != np.uint64 or target_keys.dtype != np.uint64:
            if (source_keys.dtype.kind not in "iu"
                    or target_keys.dtype.kind not in "iu"):
                raise TypeError(
                    "ingest_keys takes pre-hashed integer key arrays; "
                    "for label sequences use ingest_columns")
            source_keys = source_keys.astype(np.uint64)
            target_keys = target_keys.astype(np.uint64)
        n = source_keys.shape[0]
        if target_keys.shape[0] != n:
            raise ValueError(
                f"got {n} source keys but {target_keys.shape[0]} targets")
        if n == 0:
            return 0
        if not getattr(self, "_column_fast_path", True):
            raise ValueError(
                "extended (keep_labels) ensembles materialize labels per "
                "bucket and cannot ingest pre-hashed keys; use "
                "ingest_columns with the original labels")
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape[0] != n:
                raise ValueError(
                    f"got {n} source keys but {weights.shape[0]} weights")
        self._apply_key_columns(source_keys, target_keys, weights,
                                insert=True)
        if OBS.enabled:
            OBS.tcm_ingest_chunks.inc()
            OBS.tcm_ingest_elements.inc(n)
        return n

    def _apply_key_columns(self, source_keys: np.ndarray,
                           target_keys: np.ndarray,
                           weights: Optional[np.ndarray],
                           insert: bool = True) -> None:
        """Shared-hash scatter of one pre-converted key-column chunk.

        The hot core of :meth:`ingest_columns`/:meth:`remove_many` for
        plain (non-extended) ensembles.  Hoists everything
        ``update_many`` would repeat per sketch -- weight validation,
        undirected canonicalization, and (via per-chunk key dedup) most
        of the hashing -- so each additional sketch costs one gather
        plus one scatter.  On a fused backend (numba) the whole
        key->hash->cell pipeline runs as a single compiled pass per
        sketch instead.  Bit-identical to the per-sketch route: the
        hash values are the same by construction and the scatters are
        the same kernels.

        ``weights is None`` means unit weights.  Callers have already
        checked the aggregation is invertible when ``insert=False``.
        """
        if weights is not None and weights.size and (weights < 0).any():
            bad = float(weights[weights < 0][0])
            kind = "stream" if insert else "removal"
            raise ValueError(
                f"{kind} weights must be non-negative, got {bad}")
        if not self.directed:
            source_keys, target_keys = (np.minimum(source_keys, target_keys),
                                        np.maximum(source_keys, target_keys))
        values = (weights if self.aggregation is not Aggregation.COUNT
                  else None)
        backend = _kernels.get_backend()
        if backend.fused and getattr(self, "_fused_eligible", False):
            for sketch in self._sketches:
                sketch._apply_keys_fused(backend, source_keys, target_keys,
                                         values, insert=insert)
            return
        if (self.aggregation in (Aggregation.MIN, Aggregation.MAX)
                and values is None):
            values = np.ones(source_keys.shape[0], dtype=np.float64)
        # Hash only the distinct keys of the chunk, once per sketch side,
        # and gather back -- streams repeat hot endpoints constantly, and
        # with d sketches every duplicate would otherwise be hashed d
        # times.
        if self.d > 1:
            unique_sources, source_inverse = _kernels.dedup_keys(source_keys)
            unique_targets, target_inverse = _kernels.dedup_keys(target_keys)
        else:
            unique_sources = unique_targets = None
            source_inverse = target_inverse = None
        # One broadcast pass hashes every sketch's row (resp. column)
        # function together -- bit-identical to per-sketch hash_many,
        # but numpy dispatch overhead is paid once per side, not per
        # sketch (see hash_many_bulk).
        all_rows = _hash_bulk(
            [s._row_hash for s in self._sketches],
            unique_sources if unique_sources is not None else source_keys)
        all_cols = _hash_bulk(
            [s._col_hash for s in self._sketches],
            unique_targets if unique_targets is not None else target_keys)
        for i, sketch in enumerate(self._sketches):
            rows = (all_rows[i][source_inverse]
                    if source_inverse is not None else all_rows[i])
            cols = (all_cols[i][target_inverse]
                    if target_inverse is not None else all_cols[i])
            sketch._epoch += 1
            sketch._scatter(rows, cols, values, insert=insert)

    def clear(self) -> None:
        for sketch in self._sketches:
            sketch.clear()

    def merge_from(self, other: "TCM") -> None:
        """Fold another TCM built with the same configuration into this one.

        Mergeability (per constituent sketch) lets shards of a stream be
        summarized independently -- on different machines or over different
        time windows -- and combined into the summary of the whole stream.
        Both TCMs must come from the same ``seed``/shape configuration.
        """
        if self.d != other.d:
            raise ValueError(f"cannot merge TCMs with d={self.d} and "
                             f"d={other.d}")
        for mine, theirs in zip(self._sketches, other._sketches):
            mine.merge_from(theirs)

    # -- edge and node queries (Sections 4.1, 4.2) ------------------------------

    @_timed_query("edge_weight")
    def edge_weight(self, source: Label, target: Label) -> float:
        """Estimated aggregated edge weight ``f_e(source, target)``."""
        return self.aggregation.merge(
            s.edge_estimate(source, target) for s in self._sketches)

    @_timed_query("edge_weight_batch")
    def edge_weights(self, pairs: Sequence[Tuple[Label, Label]]) -> np.ndarray:
        """Vectorized edge-weight estimates for a batch of queries.

        Converts labels once, probes every sketch with numpy gathers and
        merges with the aggregation's direction.  Orders of magnitude
        faster than per-pair :meth:`edge_weight` for large workloads
        (Appendix C.4's query-time experiment uses this path).
        """
        if len(pairs) == 0:
            return np.zeros(0)
        source_keys = label_keys([x for x, _ in pairs])
        target_keys = label_keys([y for _, y in pairs])
        estimates = np.stack([s.edge_estimates(source_keys, target_keys)
                              for s in self._sketches])
        if self.aggregation.overestimates:
            return estimates.min(axis=0)
        return estimates.max(axis=0)

    @_timed_query("out_flow")
    def out_flow(self, node: Label) -> float:
        """Estimated node out-flow ``f_v(node, ->)``.

        Delegates to :meth:`out_flows` -- the scalar and batch paths
        share the engine's cached-row-sum kernel.
        """
        return float(self.out_flows([node])[0])

    @_timed_query("in_flow")
    def in_flow(self, node: Label) -> float:
        """Estimated node in-flow ``f_v(node, <-)``."""
        return float(self.in_flows([node])[0])

    @_timed_query("flow")
    def flow(self, node: Label) -> float:
        """Estimated undirected node flow ``f_v(node, -)``."""
        return float(self.flows([node])[0])

    @_timed_query("flow_batch")
    def out_flows(self, nodes: Sequence[Label]) -> np.ndarray:
        """Vectorized out-flow estimates for a batch of nodes.

        Per sketch the engine caches all row sums (keyed on the sketch
        epoch) and answers the batch with one fancy-indexed gather, then
        merges with the aggregation's direction.
        """
        return self.query_engine.out_flow_many(nodes)

    @_timed_query("flow_batch")
    def in_flows(self, nodes: Sequence[Label]) -> np.ndarray:
        """Vectorized in-flow estimates for a batch of nodes."""
        return self.query_engine.in_flow_many(nodes)

    @_timed_query("flow_batch")
    def flows(self, nodes: Sequence[Label]) -> np.ndarray:
        """Vectorized undirected node-flow estimates for a batch of nodes."""
        return self.query_engine.flow_many(nodes)

    @_timed_query("degree")
    def degree_estimate(self, node: Label, direction: str = "out") -> int:
        """Heuristic distinct-neighbour count: the node's occupied cells.

        Per sketch, the node's row (column) occupancy counts the distinct
        neighbour *buckets* of every label sharing the node's bucket --
        bucket-mates inflate it, neighbour merging deflates it, so unlike
        the weight estimates this has two-sided error.  The minimum
        across sketches discards the most inflated rows and tracks the
        true degree well when buckets are sparse (compare
        :func:`repro.metrics.bounds.expected_flow_error` for the matching
        regime discussion).
        """
        if direction not in ("out", "in"):
            raise ValueError(f"direction must be 'out' or 'in', got {direction!r}")
        self._require_graphical("degree_estimate")
        counts = []
        for sketch in self._sketches:
            bucket = sketch.node_of(node)
            occupied = (sketch.successors(bucket) if direction == "out"
                        else sketch.predecessors(bucket))
            counts.append(len(occupied))
        return min(counts)

    @_timed_query("heaviest_neighbours")
    def heaviest_neighbours(self, node: Label, k: int = 5,
                            direction: str = "in") -> List[Tuple[Label, float]]:
        """Conditional node query (paper Example 2): the heaviest
        neighbours of a given node, by estimated edge weight.

        One-dimensional sketches cannot answer "who sends the most to
        ``a``" at all; the graphical sketch can, and with the *extended*
        sketch (``keep_labels=True``) the answer comes back as labels.
        Candidates are the materialized labels of buckets adjacent to
        ``node``'s bucket, intersected across sketches; each candidate is
        ranked by the full ensemble estimate.

        :param direction: ``"in"`` (senders to node), ``"out"``
            (receivers from node) or ``"both"`` (undirected streams).
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if direction not in ("in", "out", "both"):
            raise ValueError(
                f"direction must be 'in'/'out'/'both', got {direction!r}")
        self._require_graphical("heaviest_neighbours")
        candidates: Optional[set] = None
        for sketch in self._sketches:
            if not sketch.keeps_labels:
                raise ValueError(
                    "heaviest_neighbours needs an extended sketch; build "
                    "the TCM with keep_labels=True")
            bucket = sketch.node_of(node)
            if direction == "in":
                adjacent = sketch.predecessors(bucket)
            elif direction == "out":
                adjacent = sketch.successors(bucket)
            else:
                adjacent = set(sketch.successors(bucket)) | \
                    set(sketch.predecessors(bucket))
            local: set = set()
            for neighbour_bucket in adjacent:
                local |= sketch.ext(int(neighbour_bucket))
            candidates = local if candidates is None else candidates & local
        candidates = candidates or set()
        candidates.discard(node)

        ordered = sorted(candidates, key=repr)
        if not ordered:
            return []
        if direction == "in":
            weights = self.edge_weights([(c, node) for c in ordered])
        elif direction == "out":
            weights = self.edge_weights([(node, c) for c in ordered])
        elif not self.directed:
            # Undirected storage is symmetric: one estimate already covers
            # both directions (summing would double-count every edge).
            weights = self.edge_weights([(node, c) for c in ordered])
        else:
            # Directed "both": traffic in either direction counts, so score
            # outgoing + incoming instead of silently dropping one side.
            weights = (self.edge_weights([(node, c) for c in ordered])
                       + self.edge_weights([(c, node) for c in ordered]))
        scored = [(candidate, float(weight))
                  for candidate, weight in zip(ordered, weights)
                  if weight > 0]
        scored.sort(key=lambda kv: (-kv[1], repr(kv[0])))
        return scored[:k]

    # -- path queries (Section 4.3) ----------------------------------------------

    @_timed_query("reachable")
    def reachable(self, source: Label, target: Label,
                  max_hops: Optional[int] = None) -> bool:
        """Estimated reachability ``r(source, target)``.

        P1: answer per sketch; P2: conjoin -- True only if the hashed
        endpoints are connected in *all* sketches.  Never returns False
        for a truly reachable pair (no false "unreachable" answers); may
        return True for unreachable pairs when collisions manufacture
        paths.

        Unbounded queries delegate to :meth:`reachable_many`, i.e. the
        engine's epoch-cached connectivity indexes: steady state is an
        O(1) component/bitset probe instead of a BFS.  Hop-bounded
        queries (``max_hops``) cannot use the transitive index and run
        the per-sketch BFS.
        """
        self._require_graphical("reachable")
        if max_hops is not None:
            return self._reachable_bfs(source, target, max_hops)
        return bool(self.reachable_many([(source, target)])[0])

    def _reachable_bfs(self, source: Label, target: Label,
                       max_hops: Optional[int]) -> bool:
        """The index-free per-sketch BFS path (hop-bounded queries)."""
        for sketch in self._sketches:
            view = SketchView(sketch)
            if not _reach(view, view.node_of(source), view.node_of(target),
                          max_hops=max_hops):
                return False
        return True

    @_timed_query("reachable_batch")
    def reachable_many(self,
                       pairs: Sequence[Tuple[Label, Label]]) -> np.ndarray:
        """Vectorized reachability for a batch of label pairs.

        Element-wise identical to calling :meth:`reachable` per pair;
        per sketch the whole batch costs two hash passes plus one index
        probe (see :class:`repro.core.query_engine.ConnectivityIndex`).
        """
        self._require_graphical("reachable")
        return self.query_engine.reachable_many(pairs)

    @_timed_query("shortest_path")
    def shortest_path_weight(self, source: Label, target: Label) -> float:
        """Estimated shortest-path weight between two labels.

        Collisions both inflate edge weights (over-estimate) and add
        spurious shortcut edges (under-estimate), so no one-sided bound
        exists; we return the max across sketches, which empirically
        tracks the truth best (spurious shortcuts are what extra sketches
        rule out).  Returns ``math.inf`` explicitly whenever *any* sketch
        finds no path -- a no-path answer is never conflated with a
        genuine zero-weight (same-node) path.

        Delegates to :meth:`shortest_path_weights`; repeated sources hit
        the engine's per-source distance cache.
        """
        weight = float(self.shortest_path_weights([(source, target)])[0])
        return math.inf if math.isinf(weight) else weight

    @_timed_query("shortest_path_batch")
    def shortest_path_weights(
            self, pairs: Sequence[Tuple[Label, Label]]) -> np.ndarray:
        """Vectorized shortest-path weights for a batch of label pairs.

        Per sketch, queries are grouped by source bucket and each group
        shares one numpy frontier relaxation over the cached bucket
        weight matrix; entries are ``inf`` where some sketch has no path.
        """
        self._require_graphical("shortest_path_weight")
        return self.query_engine.shortest_path_weight_many(pairs)

    # -- subgraph queries (Section 4.4) --------------------------------------------

    @_timed_query("subgraph")
    def subgraph_weight(self, query, max_matches: Optional[int] = None) -> float:
        """Aggregate subgraph weight ``f_g(Q)`` via per-sketch matching.

        S1: run the black-box ``subgraph()`` on each sketch; S2: merge by
        minimum.  Accepts a :class:`SubgraphQuery` or a raw edge list.
        Supports wildcards and bound wildcards.
        """
        query = query if isinstance(query, SubgraphQuery) else SubgraphQuery(query)
        self._require_graphical("subgraph_weight")
        estimates = []
        for sketch in self._sketches:
            view = SketchView(sketch)
            weight = _subgraph_weight(view, query, node_of=view.node_of,
                                      max_matches=max_matches)
            if weight == 0.0:
                # Some sketch proves no exact match exists; terminate early
                # (the optimization noted under S2 in the paper).
                return 0.0
            estimates.append(weight)
        return self.aggregation.merge(estimates)

    @_timed_query("subgraph_decomposed")
    def subgraph_weight_decomposed(self, query) -> float:
        """The per-edge optimization ``f'_g(Q)`` of Section 4.4.

        Decomposes the query into constituent edges, estimates each with
        the full ensemble (wildcard endpoints become flow queries), and
        sums -- hence ``f'_g(Q) <= f_g(Q)``.  Returns 0 if any edge
        estimate is 0.  Not applicable to bound wildcards (raises).

        Delegates to :meth:`subgraph_weight_decomposed_many`.
        """
        return float(self.subgraph_weight_decomposed_many([query])[0])

    @_timed_query("subgraph_decomposed_batch")
    def subgraph_weight_decomposed_many(self, queries) -> np.ndarray:
        """Vectorized decomposed estimates for a batch of subgraph queries.

        Flattens every query's edges into three work lists -- concrete
        pairs, wildcard-source flows, wildcard-target flows -- answers
        each list with one batched kernel (:meth:`edge_weights`,
        :meth:`in_flows`, :meth:`out_flows`), then reassembles the
        per-query sums in edge order with the same zero-rule
        short-circuit as the scalar path.
        """
        parsed = [q if isinstance(q, SubgraphQuery) else SubgraphQuery(q)
                  for q in queries]
        for query in parsed:
            if not query.supports_decomposed_estimate():
                raise ValueError(
                    "the decomposed estimate cannot bind wildcards to the "
                    "same node; use subgraph_weight() for bound-wildcard "
                    "queries")
        edge_pairs: List[Tuple[Label, Label]] = []
        in_nodes: List[Label] = []
        out_nodes: List[Label] = []
        plans: List[List[Tuple[str, int]]] = []
        total_needed = False
        for query in parsed:
            steps: List[Tuple[str, int]] = []
            for x, y in query:
                x_wild, y_wild = is_wildcard(x), is_wildcard(y)
                if x_wild and y_wild:
                    steps.append(("total", 0))
                    total_needed = True
                elif x_wild:
                    steps.append(("in", len(in_nodes)))
                    in_nodes.append(y)
                elif y_wild:
                    steps.append(("out", len(out_nodes)))
                    out_nodes.append(x)
                else:
                    steps.append(("edge", len(edge_pairs)))
                    edge_pairs.append((x, y))
            plans.append(steps)
        estimates = {
            "edge": (self.edge_weights(edge_pairs) if edge_pairs
                     else np.zeros(0)),
            "in": self.in_flows(in_nodes) if in_nodes else np.zeros(0),
            "out": self.out_flows(out_nodes) if out_nodes else np.zeros(0),
        }
        total_estimate = (self.total_weight_estimate() if total_needed
                          else 0.0)
        results = np.zeros(len(parsed))
        for qi, steps in enumerate(plans):
            total = 0.0
            for kind, idx in steps:
                estimate = (total_estimate if kind == "total"
                            else float(estimates[kind][idx]))
                if estimate == 0.0:
                    total = 0.0
                    break
                total += estimate
            results[qi] = total
        return results

    def total_weight_estimate(self) -> float:
        """Estimated total stream weight (the ``f_e(*, *)`` query)."""
        return self.aggregation.merge(
            s.total_mass() for s in self._sketches)

    # -- whole-graph analytics -------------------------------------------------------

    @_timed_query("triangles")
    def triangle_count(self) -> int:
        """Estimated triangle count: black-box count per sketch, merged min.

        Unlike weight estimates this is not a one-sided bound: hash
        collisions both *create* triangles (unrelated edges meeting in a
        bucket) and *destroy* them (two corners collapsing into one
        bucket turns a triangle into a 2-cycle).  The min-merge is a
        heuristic that discards the most collision-inflated sketches.
        """
        self._require_graphical("triangle_count")
        return min(_count_triangles(SketchView(s), directed=self.directed)
                   for s in self._sketches)

    @_timed_query("pagerank")
    def pagerank(self, damping: float = 0.85):
        """Per-sketch PageRank over super-nodes.

        Returns one rank dict per sketch (bucket -> rank); use the extended
        sketch's ``ext()`` to interpret buckets as label groups.
        """
        self._require_graphical("pagerank")
        return [_pagerank(SketchView(s), damping=damping)
                for s in self._sketches]

    def __repr__(self) -> str:
        shapes = ", ".join(f"{s.rows}x{s.cols}" for s in self._sketches)
        return (f"TCM(d={self.d}, shapes=[{shapes}], "
                f"{'directed' if self.directed else 'undirected'}, "
                f"agg={self.aggregation.value})")
