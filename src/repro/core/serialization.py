"""Persisting TCM summaries to disk.

A summary is often built on one machine (e.g. next to a packet tap) and
queried on another; this module round-trips a :class:`~repro.core.tcm.TCM`
through a single ``.npz`` file.  Matrices are stored as numpy arrays,
hash-function parameters and flags as scalars, and extended-sketch label
sets as JSON (string and integer labels only -- the two label types the
stream model produces).

No pickle is involved, so loading a sketch file is safe regardless of its
origin.
"""

from __future__ import annotations

import json
from typing import List, Union

import numpy as np

from repro.core.aggregation import Aggregation
from repro.core.graph_sketch import GraphSketch
from repro.core.tcm import TCM
from repro.hashing.family import PairwiseHash

_FORMAT_VERSION = 1


def _encode_label(label: Union[str, int]) -> List:
    if isinstance(label, str):
        return ["s", label]
    if isinstance(label, int) and not isinstance(label, bool):
        return ["i", label]
    raise TypeError(
        f"only str/int labels can be serialized, got {type(label).__name__}")


def _decode_label(encoded: List) -> Union[str, int]:
    kind, value = encoded
    if kind == "s":
        return str(value)
    if kind == "i":
        return int(value)
    raise ValueError(f"corrupt label encoding: {encoded!r}")


def save_tcm(tcm: TCM, path) -> None:
    """Write a TCM (plain or extended) to ``path`` as a ``.npz`` archive."""
    payload = {
        "format_version": np.int64(_FORMAT_VERSION),
        "d": np.int64(tcm.d),
        "directed": np.bool_(tcm.directed),
        "aggregation": np.str_(tcm.aggregation.value),
    }
    for i, sketch in enumerate(tcm.sketches):
        payload[f"matrix_{i}"] = sketch.matrix
        payload[f"row_hash_{i}"] = np.array(
            [sketch._row_hash.a, sketch._row_hash.b, sketch._row_hash.width],
            dtype=np.uint64)
        payload[f"col_hash_{i}"] = np.array(
            [sketch._col_hash.a, sketch._col_hash.b, sketch._col_hash.width],
            dtype=np.uint64)
        payload[f"graphical_{i}"] = np.bool_(sketch.is_graphical)
        # Sparse sketches have no occupancy mask (sum/count only) and
        # serialize through their densified matrix.
        touched = getattr(sketch, "_touched", None)
        if touched is not None:
            payload[f"touched_{i}"] = touched
        if sketch.keeps_labels:
            rows = {str(bucket): [_encode_label(x) for x in labels]
                    for bucket, labels in sketch._row_labels.items()}
            payload[f"row_labels_{i}"] = np.str_(json.dumps(rows))
            if sketch._col_labels is not sketch._row_labels:
                cols = {str(bucket): [_encode_label(x) for x in labels]
                        for bucket, labels in sketch._col_labels.items()}
                payload[f"col_labels_{i}"] = np.str_(json.dumps(cols))
    np.savez_compressed(path, **payload)


def load_tcm(path) -> TCM:
    """Reconstruct a TCM previously written by :func:`save_tcm`."""
    with np.load(path, allow_pickle=False) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported sketch file version {version}")
        d = int(archive["d"])
        directed = bool(archive["directed"])
        aggregation = Aggregation(str(archive["aggregation"]))

        sketches: List[GraphSketch] = []
        for i in range(d):
            row_a, row_b, row_w = (int(v) for v in archive[f"row_hash_{i}"])
            row_hash = PairwiseHash(a=row_a, b=row_b, width=row_w)
            if bool(archive[f"graphical_{i}"]):
                col_hash = None
            else:
                col_a, col_b, col_w = (int(v)
                                       for v in archive[f"col_hash_{i}"])
                col_hash = PairwiseHash(a=col_a, b=col_b, width=col_w)
            keep_labels = f"row_labels_{i}" in archive
            sketch = GraphSketch(row_hash, col_hash, directed=directed,
                                 aggregation=aggregation,
                                 keep_labels=keep_labels)
            sketch._matrix[...] = archive[f"matrix_{i}"]
            sketch.bump_epoch()
            if f"touched_{i}" in archive:
                sketch._touched[...] = archive[f"touched_{i}"]
            if keep_labels:
                rows = json.loads(str(archive[f"row_labels_{i}"]))
                for bucket, labels in rows.items():
                    sketch._row_labels[int(bucket)] = {
                        _decode_label(x) for x in labels}
                if f"col_labels_{i}" in archive:
                    cols = json.loads(str(archive[f"col_labels_{i}"]))
                    for bucket, labels in cols.items():
                        sketch._col_labels[int(bucket)] = {
                            _decode_label(x) for x in labels}
            sketches.append(sketch)

    tcm = TCM.__new__(TCM)
    tcm.directed = directed
    tcm.aggregation = aggregation
    tcm._sketches = sketches
    return tcm
