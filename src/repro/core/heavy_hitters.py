"""Streaming heavy-hitter monitors, including Algorithm 1 of the paper.

All three monitors share a pattern from the paper's experiments
(Section 6.2 Exp-1(d), Exp-2): while the stream is summarized, a small
bounded candidate structure tracks the current estimated top-k, so heavy
items are available at any moment without a scan.

- :class:`HeavyEdgeMonitor` -- top-k edges by estimated aggregated weight.
- :class:`HeavyNodeMonitor` -- top-k nodes by estimated flow.
- :class:`ConditionalHeavyHitterMonitor` -- Algorithm 1 (Appendix B.1):
  top-k heavy nodes, each with its top-l heaviest neighbours.  This is
  the query class the paper shows CountMin *cannot* answer, because it
  requires edge-to-node relationships that only a graphical sketch keeps.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.tcm import TCM
from repro.hashing.labels import Label
from repro.obs.instruments import OBS


def _evict_min(candidates: Dict[Label, float]) -> None:
    """Drop the minimum-valued entry (ties broken deterministically)."""
    victim = min(candidates, key=lambda key: (candidates[key], repr(key)))
    del candidates[victim]
    if OBS.enabled:
        OBS.hh_evictions.inc()


def _ranked(candidates: Dict[Label, float]) -> List[Tuple[Label, float]]:
    return sorted(candidates.items(), key=lambda kv: (-kv[1], repr(kv[0])))


class HeavyEdgeMonitor:
    """Track the estimated top-k heaviest edges while summarizing a stream.

    :param tcm: the summary being built; the monitor feeds it and queries
        it back for the estimate of each arriving edge (the paper's
        "priority queue per sketch" protocol, collapsed onto the merged
        ensemble estimate).
    :param k: how many edges to track.
    """

    def __init__(self, tcm: TCM, k: int):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.tcm = tcm
        self.k = k
        self._candidates: Dict[Tuple[Label, Label], float] = {}
        self._observed = OBS.hh_observed.labels("edge")

    def observe(self, source: Label, target: Label, weight: float = 1.0) -> None:
        """Ingest one stream element and refresh the top-k candidates."""
        if OBS.enabled:
            self._observed.inc()
        self.tcm.update(source, target, weight)
        if not self.tcm.directed and repr(source) > repr(target):
            source, target = target, source  # canonical undirected key
        estimate = self.tcm.edge_weight(source, target)
        key = (source, target)
        if key in self._candidates or len(self._candidates) < self.k:
            self._candidates[key] = estimate
            return
        minimum = min(self._candidates.values())
        if estimate > minimum:
            _evict_min(self._candidates)
            self._candidates[key] = estimate

    def consume(self, stream) -> None:
        """Observe every element of a stream."""
        for edge in stream:
            self.observe(edge.source, edge.target, edge.weight)

    def top(self) -> List[Tuple[Tuple[Label, Label], float]]:
        """Current estimated top-k edges, heaviest first."""
        return _ranked(self._candidates)[:self.k]


class HeavyNodeMonitor:
    """Track the estimated top-k heaviest nodes by flow.

    :param direction: ``"in"`` / ``"out"`` for directed streams,
        ``"both"`` for undirected flow.
    """

    def __init__(self, tcm: TCM, k: int, direction: str = "in"):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if direction not in ("in", "out", "both"):
            raise ValueError(f"direction must be 'in'/'out'/'both', got {direction!r}")
        if direction == "both" and tcm.directed:
            raise ValueError("direction='both' requires an undirected TCM")
        if direction != "both" and not tcm.directed:
            raise ValueError(
                "undirected TCMs track flow with direction='both'")
        self.tcm = tcm
        self.k = k
        self.direction = direction
        self._candidates: Dict[Label, float] = {}
        self._observed = OBS.hh_observed.labels("node")

    def _flow(self, node: Label) -> float:
        if self.direction == "in":
            return self.tcm.in_flow(node)
        if self.direction == "out":
            return self.tcm.out_flow(node)
        return self.tcm.flow(node)

    def observe(self, source: Label, target: Label, weight: float = 1.0) -> None:
        if OBS.enabled:
            self._observed.inc()
        self.tcm.update(source, target, weight)
        touched = (source, target) if self.direction != "in" else (target, source)
        # Both endpoints change flow for undirected; for directed streams
        # only the relevant endpoint's flow changed, but re-estimating the
        # other is harmless (estimates only grow).
        for node in (touched if self.direction == "both" else touched[:1]):
            estimate = self._flow(node)
            if node in self._candidates or len(self._candidates) < self.k:
                self._candidates[node] = estimate
                continue
            if estimate > min(self._candidates.values()):
                _evict_min(self._candidates)
                self._candidates[node] = estimate

    def consume(self, stream) -> None:
        for edge in stream:
            self.observe(edge.source, edge.target, edge.weight)

    def top(self) -> List[Tuple[Label, float]]:
        return _ranked(self._candidates)[:self.k]


class ConditionalHeavyHitterMonitor:
    """Algorithm 1: monitor conditional heavy hitters.

    Finds the top-k nodes with the highest aggregated in-flow, and for
    each such node ``y`` the top-l nodes sending the most weight *to*
    ``y``.  (The out-flow and undirected variants are symmetric; select
    with ``direction``.)

    Matches Algorithm 1 line by line, with one strict improvement noted in
    DESIGN.md: when a tracked heavy hitter receives more flow we refresh
    its stored in-weight (the paper's pseudo-code only sets it on
    insertion; refreshing is O(1) and only improves the final ranking).
    """

    def __init__(self, tcm: TCM, k: int, l: int, direction: str = "in"):
        if k < 1 or l < 1:
            raise ValueError(f"k and l must be >= 1, got k={k}, l={l}")
        if direction not in ("in", "out", "both"):
            raise ValueError(f"direction must be 'in'/'out'/'both', got {direction!r}")
        if direction == "both" and tcm.directed:
            raise ValueError("direction='both' requires an undirected TCM")
        if direction != "both" and not tcm.directed:
            raise ValueError(
                "undirected TCMs track flow with direction='both'")
        self.tcm = tcm
        self.k = k
        self.l = l
        self.direction = direction
        # hh: heavy node -> flow estimate; hn: heavy node -> neighbour -> weight
        self._hh: Dict[Label, float] = {}
        self._hn: Dict[Label, Dict[Label, float]] = {}
        self._observed = OBS.hh_observed.labels("conditional")

    def _flow(self, node: Label) -> float:
        if self.direction == "in":
            return self.tcm.in_flow(node)
        if self.direction == "out":
            return self.tcm.out_flow(node)
        return self.tcm.flow(node)

    def observe(self, source: Label, target: Label, weight: float = 1.0) -> None:
        """Process one element ``(source, target; .)`` -- Algorithm 1 lines 3-20."""
        if OBS.enabled:
            self._observed.inc()
        self.tcm.update(source, target, weight)                 # line 4
        if self.direction == "in":
            hot, neighbour = target, source
        else:
            # out-flow: the sender is the heavy hitter, receiver the neighbour.
            # Undirected: treat the pair symmetrically by processing both.
            hot, neighbour = source, target
        self._track(hot, neighbour)
        if self.direction == "both":
            self._track(target, source)

    def _track(self, hot: Label, neighbour: Label) -> None:
        flow_estimate = self._flow(hot)                         # line 5
        if self.direction == "in":
            edge_estimate = self.tcm.edge_weight(neighbour, hot)  # line 6
        else:
            edge_estimate = self.tcm.edge_weight(hot, neighbour)

        if hot in self._hh:                                     # line 7
            self._hh[hot] = flow_estimate  # refresh (see class docstring)
            neighbours = self._hn[hot]
            if neighbour in neighbours:                         # line 8
                neighbours[neighbour] = edge_estimate           # line 9
            elif (len(neighbours) < self.l
                  or edge_estimate > min(neighbours.values())):  # line 10
                if len(neighbours) == self.l:                   # line 11
                    _evict_min(neighbours)                      # line 12
                neighbours[neighbour] = edge_estimate           # line 13
            return

        # hot is not currently tracked (line 14).
        if (len(self._hh) == self.k
                and flow_estimate > min(self._hh.values())):    # line 15
            victim = min(self._hh, key=lambda n: (self._hh[n], repr(n)))
            del self._hh[victim]                                # line 16
            del self._hn[victim]
        if len(self._hh) < self.k:                              # line 17
            self._hn[hot] = {neighbour: edge_estimate}          # lines 18-19
            self._hh[hot] = flow_estimate                       # line 20

    def consume(self, stream) -> None:
        for edge in stream:
            self.observe(edge.source, edge.target, edge.weight)

    def top(self) -> List[Tuple[Label, float, List[Tuple[Label, float]]]]:
        """Top-k heavy nodes, each with its top-l heavy neighbours.

        Returns ``[(node, flow_estimate, [(neighbour, edge_estimate), ...]), ...]``
        sorted heaviest-first (line 21's ``hh``).
        """
        result = []
        for node, flow in _ranked(self._hh)[:self.k]:
            neighbours = _ranked(self._hn[node])[:self.l]
            result.append((node, flow, neighbours))
        return result
