"""Subgraph query terms: constants, wildcards and bound wildcards.

Paper Section 4.4 defines aggregate subgraph queries
``Q = {(x1, y1), ..., (xk, yk)}`` and two extensions:

- each term may be a *wildcard* ``*`` matching any node
  (query Q5 in the paper), and
- wildcards may carry subscripts ``*_j``; equal subscripts force the same
  node (query Q6 -- e.g. common-neighbour / triangle counting).

We model a term as either a plain node label, :data:`WILDCARD`, or a
:class:`BoundWildcard` with a tag.  A :class:`SubgraphQuery` validates and
normalizes the edge list and reports its structural features, which
evaluation strategies use (the decomposed-optimization of Section 4.4 is
sound for constants and free wildcards but not for bound wildcards).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Sequence, Tuple, Union

from repro.hashing.labels import Label
from repro.obs.instruments import OBS


@dataclass(frozen=True)
class Wildcard:
    """The free wildcard ``*``: matches any node, each occurrence freely."""

    def __repr__(self) -> str:
        return "*"


@dataclass(frozen=True)
class BoundWildcard:
    """A subscripted wildcard ``*_tag``; equal tags bind to the same node."""

    tag: str

    def __post_init__(self) -> None:
        if not self.tag:
            raise ValueError("BoundWildcard needs a non-empty tag")

    def __repr__(self) -> str:
        return f"*_{self.tag}"


WILDCARD = Wildcard()

Term = Union[Label, Wildcard, BoundWildcard]
QueryEdge = Tuple[Term, Term]


def is_wildcard(term: Term) -> bool:
    """True for both free and bound wildcards."""
    return isinstance(term, (Wildcard, BoundWildcard))


class SubgraphQuery:
    """A validated aggregate-subgraph query.

    >>> q = SubgraphQuery([("a", "b"), ("b", "c"), ("c", "a")])   # Q4
    >>> q.has_wildcards
    False
    >>> q5 = SubgraphQuery([(WILDCARD, "b"), ("b", "c"), ("c", WILDCARD)])
    >>> q6 = SubgraphQuery([(BoundWildcard("1"), "b"), ("b", "c"),
    ...                     ("c", BoundWildcard("1"))])
    >>> q6.has_bound_wildcards
    True
    """

    def __init__(self, edges: Sequence[QueryEdge]):
        if not edges:
            raise ValueError("a subgraph query needs at least one edge")
        normalized: List[QueryEdge] = []
        for edge in edges:
            if len(edge) != 2:
                raise ValueError(f"query edge must be a pair, got {edge!r}")
            normalized.append((edge[0], edge[1]))
        self._edges: Tuple[QueryEdge, ...] = tuple(normalized)
        if OBS.enabled:
            OBS.subgraph_queries_built.inc()

    @property
    def edges(self) -> Tuple[QueryEdge, ...]:
        return self._edges

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self):
        return iter(self._edges)

    @property
    def has_wildcards(self) -> bool:
        return any(is_wildcard(t) for e in self._edges for t in e)

    @property
    def has_bound_wildcards(self) -> bool:
        return any(isinstance(t, BoundWildcard) for e in self._edges for t in e)

    @property
    def constants(self) -> FrozenSet[Label]:
        """The constant labels mentioned by the query."""
        return frozenset(t for e in self._edges for t in e if not is_wildcard(t))

    @property
    def bound_tags(self) -> FrozenSet[str]:
        return frozenset(t.tag for e in self._edges for t in e
                         if isinstance(t, BoundWildcard))

    def supports_decomposed_estimate(self) -> bool:
        """Whether the per-edge optimization of Section 4.4 applies.

        The paper: the optimization (sum of independent per-edge estimates)
        works for constants and free wildcards, but *cannot* be applied
        when bound wildcards tie edges together.
        """
        return not self.has_bound_wildcards

    def __repr__(self) -> str:
        inner = ", ".join(f"({a!r}, {b!r})" for a, b in self._edges)
        return f"SubgraphQuery([{inner}])"
