"""Comparing sketches: the evolution of graphs (paper Section 7).

Two same-configuration TCMs -- e.g. consecutive buckets of a
:class:`~repro.core.snapshots.SnapshotRing`, or yesterday's and today's
summaries -- are cell-for-cell comparable because they share hash
functions.  That turns "how did the graph change?" into sketch
arithmetic:

- :func:`sketch_distance` -- L1/L∞ distance between the summarized
  multigraphs (an over-approximation-safe change magnitude);
- :func:`top_changed_cells` -- the matrix cells whose aggregated weight
  moved the most, i.e. *where* the change happened;
- :func:`top_changed_edges` -- with extended sketches, the changed cells
  decoded back to candidate label pairs.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.tcm import TCM


def _check_comparable(before: TCM, after: TCM) -> None:
    if before.d != after.d:
        raise ValueError(f"cannot compare TCMs with d={before.d} and "
                         f"d={after.d}")
    for mine, theirs in zip(before.sketches, after.sketches):
        if not mine.compatible_with(theirs):
            raise ValueError("cannot compare sketches built with different "
                             "hashes, direction or aggregation")


def sketch_distance(before: TCM, after: TCM, order: str = "l1") -> float:
    """Distance between two same-configuration summaries.

    Per sketch, the matrix difference is taken cell-wise and reduced by
    ``order`` (``"l1"``: total absolute change; ``"linf"``: largest
    single-cell change); across the ensemble, the *minimum* is returned,
    since every sketch over-approximates change the same way it
    over-approximates weight (colliding changes can only add up).
    """
    if order not in ("l1", "linf"):
        raise ValueError(f"order must be 'l1' or 'linf', got {order!r}")
    _check_comparable(before, after)
    distances = []
    for mine, theirs in zip(before.sketches, after.sketches):
        difference = np.abs(theirs.matrix - mine.matrix)
        distances.append(float(difference.sum() if order == "l1"
                               else difference.max()))
    return min(distances)


def top_changed_cells(before: TCM, after: TCM, k: int = 10,
                      sketch_index: int = 0
                      ) -> List[Tuple[Tuple[int, int], float]]:
    """The k cells of one sketch with the largest absolute weight change.

    Returns ``[((row, col), signed_delta), ...]``, biggest |delta| first.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    _check_comparable(before, after)
    delta = (after.sketches[sketch_index].matrix
             - before.sketches[sketch_index].matrix)
    flat = np.abs(delta).ravel()
    k = min(k, int((flat > 0).sum()))
    if k == 0:
        return []
    order = np.argsort(-flat, kind="stable")[:k]
    cols = delta.shape[1]
    return [((int(i // cols), int(i % cols)),
             float(delta[i // cols, i % cols])) for i in order]


def top_changed_edges(before: TCM, after: TCM, k: int = 10
                      ) -> List[Tuple[Tuple[object, object], float]]:
    """Changed cells decoded to candidate label pairs (extended sketches).

    For each of the top changed cells of sketch 0, the materialized
    labels of its row and column buckets give the candidate endpoints;
    each candidate pair is re-estimated in *both* summaries with the full
    ensemble and ranked by the change of its merged estimate.  Requires
    both TCMs to be extended (``keep_labels=True``).
    """
    _check_comparable(before, after)
    sketch_after = after.sketches[0]
    if not sketch_after.keeps_labels:
        raise ValueError("top_changed_edges needs extended sketches; "
                         "build both TCMs with keep_labels=True")
    changed: dict = {}
    for (row, col), _ in top_changed_cells(before, after, k=k):
        for x in sketch_after.ext(row):
            for y in sketch_after.ext(col):
                pair = (x, y)
                if pair in changed:
                    continue
                delta = (after.edge_weight(x, y)
                         - before.edge_weight(x, y))
                if delta != 0.0:
                    changed[pair] = delta
    ranked = sorted(changed.items(),
                    key=lambda kv: (-abs(kv[1]), repr(kv[0])))
    return ranked[:k]
