"""The sketch as a filter for exact query evaluation (paper Section 7).

"Another topic is, instead of treating it as a sketch, we plan to store
extra information, use it as a filter for general (exact) query
evaluation."  :class:`SketchFilteredStore` is that design: an exact
edge store sits behind a TCM, and every point query consults the sketch
first.  Sum-aggregated estimates never under-count, so

- a zero sketch estimate **proves** the edge is absent -- the exact store
  is never touched for misses, and
- the sketch estimate upper-bounds the exact answer, which enables
  threshold queries ("is this edge heavier than T?") to short-circuit
  without any exact lookup when the bound is already below T.

On workloads dominated by misses (e.g. probing a firewall's flow table
for never-seen host pairs) the filter eliminates almost all exact-store
accesses; the hit/miss accounting is exposed so the benefit is
measurable.
"""

from __future__ import annotations

from typing import Optional

from repro.core.aggregation import Aggregation
from repro.core.tcm import TCM
from repro.hashing.labels import Label
from repro.streams.model import GraphStream


class SketchFilteredStore:
    """An exact edge store guarded by a TCM filter.

    :param d, width, seed: the filter's TCM configuration.  Sum
        aggregation is required (the no-undercount guarantee is what
        makes the filter sound).
    """

    def __init__(self, d: int = 4, width: int = 256, *,
                 seed: Optional[int] = 0, directed: bool = True):
        self._filter = TCM(d=d, width=width, seed=seed, directed=directed,
                           aggregation=Aggregation.SUM)
        self._exact = GraphStream(directed=directed)
        self.exact_lookups = 0
        self.filtered_misses = 0
        self.filtered_threshold = 0

    @property
    def directed(self) -> bool:
        return self._exact.directed

    @property
    def sketch(self) -> TCM:
        return self._filter

    def update(self, source: Label, target: Label, weight: float = 1.0,
               timestamp: float = 0.0) -> None:
        """Insert into both the exact store and the filter -- O(d)."""
        self._exact.add(source, target, weight, timestamp)
        self._filter.update(source, target, weight)

    def ingest(self, stream) -> int:
        count = 0
        for edge in stream:
            self.update(edge.source, edge.target, edge.weight,
                        edge.timestamp)
            count += 1
        return count

    def edge_weight(self, source: Label, target: Label) -> float:
        """Exact edge weight, short-circuiting proven misses."""
        if self._filter.edge_weight(source, target) == 0.0:
            self.filtered_misses += 1
            return 0.0
        self.exact_lookups += 1
        return self._exact.edge_weight(source, target)

    def edge_heavier_than(self, source: Label, target: Label,
                          threshold: float) -> bool:
        """Exact threshold test with sketch short-circuiting.

        The sketch estimate upper-bounds the truth, so an estimate below
        the threshold answers ``False`` without an exact lookup.
        """
        if self._filter.edge_weight(source, target) < threshold:
            self.filtered_threshold += 1
            return False
        self.exact_lookups += 1
        return self._exact.edge_weight(source, target) >= threshold

    @property
    def filter_rate(self) -> float:
        """Fraction of point queries answered without the exact store."""
        filtered = self.filtered_misses + self.filtered_threshold
        total = filtered + self.exact_lookups
        return filtered / total if total else 0.0
