"""High-dimensional stream sketches (paper Section 5.1.3, "See further").

The paper's generalization: for stream elements ``(v1, ..., vx)`` with
``x`` intra-connected values, use ``x`` independent per-dimension methods
``m1..mx`` -- each either a hash function or a *predefined* mapping (e.g.
protocol tags TCP/UDP, or years as a time dimension) -- and store the
aggregated weights in an ``x``-dimensional array.  A TCM matrix is the
``x = 2`` case; a CountMin row is ``x = 1``.

:class:`TensorSketch` implements the full ensemble: ``d`` independent
``x``-dimensional arrays, each dimension hashed by its own pairwise-
independent function or routed by a user-supplied categorical mapping.
Estimates merge with the minimum (sum aggregation over-approximates, as
in 2-D), and any subset of coordinates may be the free wildcard ``*`` to
obtain marginals -- the ``x``-dimensional analogue of node-flow queries.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.queries import WILDCARD, Wildcard
from repro.hashing.family import HashFamily
from repro.hashing.labels import Label

# A dimension spec: a bucket count (hashed dimension) or an explicit
# category -> index mapping (predefined dimension, e.g. protocols).
DimensionSpec = Union[int, Mapping[Label, int]]


class _Dimension:
    """Resolution of one coordinate to an array index."""

    def __init__(self, spec: DimensionSpec, hash_fn):
        if isinstance(spec, int):
            if spec < 1:
                raise ValueError(f"dimension width must be >= 1, got {spec}")
            self.width = spec
            self._mapping: Optional[Dict[Label, int]] = None
            self._hash = hash_fn
        else:
            mapping = dict(spec)
            if not mapping:
                raise ValueError("a predefined dimension mapping is empty")
            indexes = sorted(set(mapping.values()))
            if indexes != list(range(len(indexes))):
                raise ValueError(
                    "predefined dimension indexes must be 0..k-1 without "
                    f"gaps, got {indexes}")
            self.width = len(indexes)
            self._mapping = mapping
            self._hash = None

    @property
    def predefined(self) -> bool:
        return self._mapping is not None

    def index_of(self, value: Label) -> int:
        if self._mapping is not None:
            try:
                return self._mapping[value]
            except KeyError:
                raise KeyError(
                    f"value {value!r} is not in this predefined dimension"
                ) from None
        return self._hash(value)


class TensorSketch:
    """A ``d``-ensemble of ``x``-dimensional hashed count arrays.

    :param dimensions: one spec per coordinate of a stream element --
        an int (bucket count for a hashed dimension) or a mapping
        (predefined categories).
    :param d: ensemble size; predefined dimensions are shared across the
        ensemble (there is nothing random about them), hashed dimensions
        get ``d`` independent hash functions each.
    :param seed: seeds all hash functions.

    >>> sketch = TensorSketch([64, 64, {"tcp": 0, "udp": 1}], d=3, seed=1)
    >>> sketch.update(("10.0.0.1", "10.0.0.9", "tcp"), 120.0)
    >>> sketch.estimate(("10.0.0.1", "10.0.0.9", "tcp"))
    120.0
    """

    def __init__(self, dimensions: Sequence[DimensionSpec], d: int = 4,
                 seed: Optional[int] = 0):
        if not dimensions:
            raise ValueError("TensorSketch needs at least one dimension")
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        hashed_widths = [spec for spec in dimensions if isinstance(spec, int)]
        family = HashFamily(hashed_widths * d, seed=seed) if hashed_widths \
            else None

        self._replicas: List[Tuple[_Dimension, ...]] = []
        cursor = 0
        for _ in range(d):
            dims = []
            for spec in dimensions:
                if isinstance(spec, int):
                    dims.append(_Dimension(spec, family[cursor]))
                    cursor += 1
                else:
                    dims.append(_Dimension(spec, None))
            self._replicas.append(tuple(dims))
        self._arrays = [
            np.zeros(tuple(dim.width for dim in dims))
            for dims in self._replicas
        ]

    @property
    def d(self) -> int:
        return len(self._arrays)

    @property
    def ndim(self) -> int:
        return self._arrays[0].ndim

    @property
    def size_in_cells(self) -> int:
        return sum(array.size for array in self._arrays)

    def _cell(self, dims: Tuple[_Dimension, ...],
              coordinates: Sequence[Label]) -> Tuple[int, ...]:
        if len(coordinates) != len(dims):
            raise ValueError(
                f"expected {len(dims)} coordinates, got {len(coordinates)}")
        return tuple(dim.index_of(value)
                     for dim, value in zip(dims, coordinates))

    def update(self, coordinates: Sequence[Label], weight: float = 1.0) -> None:
        """Absorb one ``x``-dimensional element -- O(d * x)."""
        if weight < 0:
            raise ValueError(f"weights must be non-negative, got {weight}")
        for dims, array in zip(self._replicas, self._arrays):
            array[self._cell(dims, coordinates)] += weight

    def remove(self, coordinates: Sequence[Label], weight: float = 1.0) -> None:
        """Delete one previously inserted element (sliding windows)."""
        for dims, array in zip(self._replicas, self._arrays):
            array[self._cell(dims, coordinates)] -= weight

    def estimate(self, coordinates: Sequence[Label]) -> float:
        """Estimated aggregated weight; wildcards produce marginals.

        Each coordinate is a concrete value or :data:`WILDCARD`; wildcard
        axes are summed out (e.g. ``(src, *, "tcp")`` estimates all TCP
        bytes sent by ``src``).  Like all sum-aggregated estimates this
        over-approximates, and the ensemble merges with the minimum.
        """
        estimates = []
        for dims, array in zip(self._replicas, self._arrays):
            if len(coordinates) != len(dims):
                raise ValueError(
                    f"expected {len(dims)} coordinates, "
                    f"got {len(coordinates)}")
            index: List[Union[int, slice]] = []
            wildcard_axes = []
            for axis, (dim, value) in enumerate(zip(dims, coordinates)):
                if isinstance(value, Wildcard):
                    index.append(slice(None))
                    wildcard_axes.append(axis)
                else:
                    index.append(dim.index_of(value))
            cell = array[tuple(index)]
            estimates.append(float(cell.sum()) if wildcard_axes
                             else float(cell))
        return min(estimates)

    def total_weight_estimate(self) -> float:
        """Estimate of the total stream weight (all-wildcard marginal)."""
        return self.estimate([WILDCARD] * self.ndim)

    def merge_from(self, other: "TensorSketch") -> None:
        """Fold another same-configuration TensorSketch into this one.

        Like 2-D sketches, sum-aggregated tensors are linear: adding the
        arrays of two same-seed sketches yields the sketch of the
        concatenated streams (sharding/windowing for high-dimensional
        streams).
        """
        if self.d != other.d or self.ndim != other.ndim:
            raise ValueError("cannot merge TensorSketches with different "
                             "shapes")
        for mine, theirs in zip(self._arrays, other._arrays):
            if mine.shape != theirs.shape:
                raise ValueError("cannot merge TensorSketches with different "
                                 "shapes")
        for dims_a, dims_b in zip(self._replicas, other._replicas):
            for dim_a, dim_b in zip(dims_a, dims_b):
                if dim_a.predefined != dim_b.predefined or \
                        (not dim_a.predefined and dim_a._hash != dim_b._hash) or \
                        (dim_a.predefined and dim_a._mapping != dim_b._mapping):
                    raise ValueError("cannot merge TensorSketches built "
                                     "with different dimension methods")
        for mine, theirs in zip(self._arrays, other._arrays):
            mine += theirs

    def __repr__(self) -> str:
        shape = "x".join(str(dim.width) for dim in self._replicas[0])
        return f"TensorSketch(d={self.d}, shape={shape})"
