"""Pluggable scatter/hash kernels behind the batched ingest paths.

Every bulk mutation in the library bottoms out in one of a handful of
primitives: *scatter-add* (sum/count ingest and deletion), *segment
extreme* (min/max ingest), *segment floor* (batched conservative
update) and *segment sums* (the sparse backend's grouped dict update).
This module implements those primitives once, behind a tiny backend
registry, so the sketches stay storage/aggregation logic and the hot
arithmetic can be swapped wholesale:

- ``numpy``   -- pure-numpy kernels built on flat-index ``np.bincount``
  (a buffered scatter, several times faster than the unbuffered
  ``np.add.at``) and sort-based ``reduceat`` segment reduction.
- ``numba``   -- optional jitted kernels: per-element scatter loops plus
  a *fused* path that goes key -> Mersenne hash -> flat index -> cell in
  a single compiled pass with no intermediate arrays.  Only offered when
  numba is importable; never a hard dependency.
- ``auto``    -- numba when available, numpy otherwise (the default).

Select a backend with :func:`set_backend`, per-call via
:func:`get_backend`, through the ``REPRO_KERNEL`` environment variable,
or ``tcm ingest --kernel``.

**Exactness contract.**  All backends produce *bit-identical* state to
the per-element scalar loop, for arbitrary float weights:

- scatter-add seeds each touched cell's accumulator with the cell's
  current value and then folds the batch's weights in stream order, so a
  cell ends at ``((m + w1) + w2) ...`` exactly like repeated ``+=``
  (``np.bincount`` accumulates its input sequentially; the numba loop is
  literally repeated ``+=``).  Deletion passes negated weights --
  ``m + (-w)`` is IEEE-identical to ``m - w``.
- segment extremes return one of their inputs, so no rounding exists.
- the unit-weight fast path (``np.bincount`` without weights) is only
  taken when every cell stays far below 2**53, where integer-valued
  float addition is associative; otherwise it falls back to the seeded
  path.
"""

from __future__ import annotations

import contextlib
import os
from typing import Callable, Dict, Iterator, Optional, Tuple

import numpy as np

__all__ = [
    "available_backends", "get_backend", "set_backend", "active_backend",
    "use_backend", "resolve_backend", "reset", "dedup_keys",
    "KernelBackend", "NumpyKernels", "NumbaKernels",
]

#: Cells must stay below this for the unit-weight count fast path to be
#: exact (integer-valued float64 addition is associative below 2**53).
_EXACT_COUNT_LIMIT = float(2 ** 52)

#: Batches smaller than this skip the per-chunk key dedup (the sort
#: costs more than the duplicate hashing it saves).
_DEDUP_MIN_BATCH = 2048

_ARANGE_CACHE: Dict[int, np.ndarray] = {}


def _arange(size: int) -> np.ndarray:
    """Cached ``np.arange(size)`` -- the seed indices of a dense scatter."""
    cached = _ARANGE_CACHE.get(size)
    if cached is None:
        if len(_ARANGE_CACHE) >= 32:
            _ARANGE_CACHE.clear()
        cached = np.arange(size, dtype=np.int64)
        _ARANGE_CACHE[size] = cached
    return cached


_DEDUP_PROBE = 512


def dedup_keys(keys: np.ndarray, *,
               min_batch: int = _DEDUP_MIN_BATCH
               ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Distinct keys plus the inverse gather, or ``(keys, None)`` when
    deduplication would cost more than it saves.

    Streams repeat hot endpoints constantly, and an ensemble hashes the
    same key column once per sketch: hashing only the distinct keys and
    gathering per sketch amortizes the sort across ``d`` hash passes.

    The full ``np.unique`` sort is itself the dominant cost on
    low-repetition batches, so a strided ~512-key probe is sorted first
    and the batch is passed through untouched when the probe shows
    almost no repetition.  The probe sees heavy-hitter repetition (the
    case where dedup pays) at roughly its true rate; it under-counts
    keys that repeat only a couple of times each, but for those the
    sort costs about as much as the duplicate hashing it would avoid,
    so skipping is near break-even rather than a loss.
    """
    n = keys.shape[0]
    if n < min_batch:
        return keys, None
    step = n // _DEDUP_PROBE
    if step > 1:
        probe = np.sort(keys[::step])
        distinct = int(np.count_nonzero(probe[1:] != probe[:-1])) + 1
        if distinct * 8 >= probe.shape[0] * 7:
            # Under ~12.5% repetition in the probe: not worth sorting
            # the full batch to find out the exact rate.
            return keys, None
    unique, inverse = np.unique(keys, return_inverse=True)
    if unique.shape[0] * 4 > keys.shape[0] * 3:
        # Barely any repetition; the gathers would cost more than the
        # duplicate hashing they avoid.
        return keys, None
    return unique, inverse


def _flat_indices(rows: np.ndarray, cols: np.ndarray,
                  ncols: int) -> np.ndarray:
    return rows * np.int64(ncols) + cols


# -- pure-numpy kernel bodies -------------------------------------------------


def _np_scatter_signed(matrix: np.ndarray, rows: np.ndarray,
                       cols: np.ndarray, values: np.ndarray) -> None:
    """Seeded scatter-add of (possibly negated) float64 values."""
    n = rows.shape[0]
    if n == 0:
        return
    flat_mat = matrix.reshape(-1)
    size = flat_mat.shape[0]
    flat = _flat_indices(rows, cols, matrix.shape[1])
    if size <= 4 * n:
        # Dense variant: seed every cell, one bincount over the whole
        # table.  Untouched cells accumulate only their seed (0 + m = m).
        flat_mat[:] = np.bincount(
            np.concatenate([_arange(size), flat]),
            weights=np.concatenate([flat_mat, values]),
            minlength=size)
    else:
        # Compact variant for tables much larger than the batch: group
        # by distinct cell first, seed only the touched cells.
        cells, inverse = np.unique(flat, return_inverse=True)
        k = cells.shape[0]
        flat_mat[cells] = np.bincount(
            np.concatenate([_arange(k), inverse]),
            weights=np.concatenate([flat_mat[cells], values]),
            minlength=k)


def _np_scatter_add(matrix: np.ndarray, rows: np.ndarray, cols: np.ndarray,
                    values: Optional[np.ndarray]) -> None:
    if rows.shape[0] == 0:
        return
    if values is None or (values.shape[0] and bool((values == 1.0).all())):
        _np_scatter_count(matrix, rows, cols, negate=False)
        return
    _np_scatter_signed(matrix, rows, cols, values)


def _np_scatter_sub(matrix: np.ndarray, rows: np.ndarray, cols: np.ndarray,
                    values: Optional[np.ndarray]) -> None:
    if rows.shape[0] == 0:
        return
    if values is None or (values.shape[0] and bool((values == 1.0).all())):
        _np_scatter_count(matrix, rows, cols, negate=True)
        return
    _np_scatter_signed(matrix, rows, cols, np.negative(values))


def _np_scatter_count(matrix: np.ndarray, rows: np.ndarray,
                      cols: np.ndarray, negate: bool) -> None:
    """Add (or subtract) 1 per element via an unweighted bincount.

    ``m + k`` equals ``k`` repeated ``m += 1.0`` only while the cell
    magnitude stays below 2**53; past that the seeded scatter (which
    replays the additions one by one per cell) takes over so the result
    stays bit-identical to the scalar loop.
    """
    n = rows.shape[0]
    if n == 0:
        return
    flat_mat = matrix.reshape(-1)
    size = flat_mat.shape[0]
    flat = _flat_indices(rows, cols, matrix.shape[1])
    if size <= 4 * n:
        counts = np.bincount(flat, minlength=size)
        touched_max = float(np.abs(flat_mat).max()) if size else 0.0
        if touched_max + n < _EXACT_COUNT_LIMIT:
            if negate:
                flat_mat -= counts
            else:
                flat_mat += counts
            return
    else:
        cells, counts = np.unique(flat, return_counts=True)
        current = flat_mat[cells]
        if float(np.abs(current).max()) + n < _EXACT_COUNT_LIMIT:
            if negate:
                flat_mat[cells] = current - counts
            else:
                flat_mat[cells] = current + counts
            return
    ones = np.ones(n, dtype=np.float64)
    _np_scatter_signed(matrix, rows, cols,
                       np.negative(ones) if negate else ones)


def _segment_starts(flat: np.ndarray,
                    values: np.ndarray) -> Tuple[np.ndarray, np.ndarray,
                                                 np.ndarray]:
    """Sort by cell; return (cells, group starts, sorted values)."""
    order = np.argsort(flat, kind="stable")
    sorted_flat = flat[order]
    starts = np.flatnonzero(
        np.concatenate([[True], sorted_flat[1:] != sorted_flat[:-1]]))
    return sorted_flat[starts], starts, values[order]


def _np_scatter_extreme(matrix: np.ndarray, touched: np.ndarray,
                        rows: np.ndarray, cols: np.ndarray,
                        values: np.ndarray, minimum: bool) -> None:
    """Sort-based segment min/max folded into matrix + touched mask."""
    if rows.shape[0] == 0:
        return
    flat = _flat_indices(rows, cols, matrix.shape[1])
    cells, starts, sorted_values = _segment_starts(flat, values)
    combine = np.minimum if minimum else np.maximum
    extremes = combine.reduceat(sorted_values, starts)
    flat_mat = matrix.reshape(-1)
    flat_touch = touched.reshape(-1)
    seen = flat_touch[cells]
    current = flat_mat[cells]
    flat_mat[cells] = np.where(seen, combine(current, extremes), extremes)
    flat_touch[cells] = True


def _np_scatter_floor(matrix: np.ndarray, rows: np.ndarray,
                      cols: np.ndarray, floors: np.ndarray) -> None:
    """Lift each targeted cell to the max floor landing on it."""
    if rows.shape[0] == 0:
        return
    flat = _flat_indices(rows, cols, matrix.shape[1])
    cells, starts, sorted_floors = _segment_starts(flat, floors)
    group_max = np.maximum.reduceat(sorted_floors, starts)
    flat_mat = matrix.reshape(-1)
    flat_mat[cells] = np.maximum(flat_mat[cells], group_max)


def _np_scatter_add_1d(table: np.ndarray, idx: np.ndarray,
                       values: Optional[np.ndarray]) -> None:
    """1-D seeded scatter-add (CountMin rows)."""
    n = idx.shape[0]
    if n == 0:
        return
    size = table.shape[0]
    if values is None or bool((values == 1.0).all()):
        counts = np.bincount(idx, minlength=size)
        if float(np.abs(table).max()) + n < _EXACT_COUNT_LIMIT:
            table += counts
            return
        values = np.ones(n, dtype=np.float64)
    table[:] = np.bincount(
        np.concatenate([_arange(size), idx]),
        weights=np.concatenate([table, values]), minlength=size)


def _np_segment_cell_sums(rows: np.ndarray, cols: np.ndarray, ncols: int,
                          values: np.ndarray
                          ) -> Tuple[np.ndarray, np.ndarray]:
    """Distinct flat cells and their per-cell stream-order weight sums."""
    flat = _flat_indices(rows, cols, ncols)
    cells, inverse = np.unique(flat, return_inverse=True)
    sums = np.bincount(inverse, weights=values, minlength=cells.shape[0])
    return cells, sums


# -- numba kernel bodies ------------------------------------------------------
#
# Written as plain functions over numpy scalars/arrays so the *same*
# bodies run unjitted (the pure-Python twins the test suite exercises
# even when numba is absent) and jitted (what the numba backend
# dispatches to).  All integer arithmetic is uint64 limb math that never
# overflows, mirroring repro.hashing.family's vectorized construction
# bit for bit.

_U61 = np.uint64((1 << 61) - 1)
_U31 = np.uint64(31)
_U30 = np.uint64(30)
_M31 = np.uint64((1 << 31) - 1)
_M30 = np.uint64((1 << 30) - 1)


def _kb_hash_key(a_hi, a_lo, b, width, key):
    """Scalar Mersenne hash ``((a*k + b) mod 2^61-1) mod width``.

    Matches :meth:`repro.hashing.family.PairwiseHash.hash_int` exactly;
    ``a`` arrives pre-split as ``a_hi * 2^31 + a_lo`` so every partial
    product fits in uint64.
    """
    k = (key & _U61) + (key >> np.uint64(61))
    if k >= _U61:
        k -= _U61
    k_hi = k >> _U31
    k_lo = k & _M31
    top = a_hi * k_hi
    top = (top & _U61) + (top >> np.uint64(61))
    if top >= _U61:
        top -= _U61
    top = top + top
    if top >= _U61:
        top -= _U61
    mid = a_hi * k_lo + a_lo * k_hi
    mid = (mid & _U61) + (mid >> np.uint64(61))
    if mid >= _U61:
        mid -= _U61
    mid = ((mid & _M30) << _U31) + (mid >> _U30)
    if mid >= _U61:
        mid -= _U61
    bot = a_lo * k_lo
    bot = (bot & _U61) + (bot >> np.uint64(61))
    if bot >= _U61:
        bot -= _U61
    total = top + mid
    if total >= _U61:
        total -= _U61
    total = total + bot
    if total >= _U61:
        total -= _U61
    total = total + b
    if total >= _U61:
        total -= _U61
    return total % width


def _kb_scatter_add(flat_mat, flat_idx, values):
    for i in range(flat_idx.shape[0]):
        flat_mat[flat_idx[i]] += values[i]


def _kb_scatter_sub(flat_mat, flat_idx, values):
    for i in range(flat_idx.shape[0]):
        flat_mat[flat_idx[i]] -= values[i]


def _kb_scatter_extreme(flat_mat, flat_touch, flat_idx, values, minimum):
    for i in range(flat_idx.shape[0]):
        j = flat_idx[i]
        v = values[i]
        if not flat_touch[j]:
            flat_mat[j] = v
            flat_touch[j] = True
        elif minimum:
            if v < flat_mat[j]:
                flat_mat[j] = v
        elif v > flat_mat[j]:
            flat_mat[j] = v


def _kb_scatter_floor(flat_mat, flat_idx, floors):
    for i in range(flat_idx.shape[0]):
        j = flat_idx[i]
        if flat_mat[j] < floors[i]:
            flat_mat[j] = floors[i]


def _kb_fused_scatter(flat_mat, flat_touch, ncols,
                      ra_hi, ra_lo, rb, rwidth,
                      ca_hi, ca_lo, cb, cwidth,
                      skeys, tkeys, values, op):
    """Fused key -> hash -> flat index -> cell pass.

    ``op``: 0 add, 1 subtract, 2 min, 3 max.  Keys must already be in
    canonical orientation for undirected sketches.
    """
    for i in range(skeys.shape[0]):
        r = _kb_hash_key(ra_hi, ra_lo, rb, rwidth, skeys[i])
        c = _kb_hash_key(ca_hi, ca_lo, cb, cwidth, tkeys[i])
        j = r * ncols + c
        if op == 0:
            flat_mat[j] += values[i]
        elif op == 1:
            flat_mat[j] -= values[i]
        else:
            v = values[i]
            if not flat_touch[j]:
                flat_mat[j] = v
                flat_touch[j] = True
            elif op == 2:
                if v < flat_mat[j]:
                    flat_mat[j] = v
            elif v > flat_mat[j]:
                flat_mat[j] = v


def _hash_coefficients(hash_fn) -> Tuple[np.uint64, np.uint64, np.uint64,
                                         np.uint64]:
    """(a_hi, a_lo, b, width) of a PairwiseHash as uint64 scalars."""
    return (np.uint64(hash_fn.a >> 31), np.uint64(hash_fn.a & ((1 << 31) - 1)),
            np.uint64(hash_fn.b), np.uint64(hash_fn.width))


_DUMMY_TOUCH = np.zeros(1, dtype=np.bool_)


# -- backends -----------------------------------------------------------------


class KernelBackend:
    """The primitive set a scatter backend provides.

    ``fused`` advertises whether :meth:`fused_ingest` is a genuinely
    single-pass kernel (numba) or a composition fallback (numpy) --
    callers use it to decide whether pre-hashing/dedup still pays.
    """

    name = "abstract"
    fused = False

    def scatter_add(self, matrix, rows, cols, values) -> None:
        raise NotImplementedError

    def scatter_sub(self, matrix, rows, cols, values) -> None:
        raise NotImplementedError

    def scatter_extreme(self, matrix, touched, rows, cols, values,
                        minimum) -> None:
        raise NotImplementedError

    def scatter_floor(self, matrix, rows, cols, floors) -> None:
        raise NotImplementedError

    def scatter_add_1d(self, table, idx, values) -> None:
        raise NotImplementedError

    def segment_cell_sums(self, rows, cols, ncols, values):
        return _np_segment_cell_sums(rows, cols, ncols, values)

    def fused_ingest(self, sketch_matrix, touched, row_hash, col_hash,
                     skeys, tkeys, values, op) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<{type(self).__name__} {self.name!r}>"


class NumpyKernels(KernelBackend):
    """Buffered bincount scatter + sort-based segment reduction."""

    name = "numpy"
    fused = False

    def scatter_add(self, matrix, rows, cols, values) -> None:
        _np_scatter_add(matrix, rows, cols, values)

    def scatter_sub(self, matrix, rows, cols, values) -> None:
        _np_scatter_sub(matrix, rows, cols, values)

    def scatter_extreme(self, matrix, touched, rows, cols, values,
                        minimum) -> None:
        _np_scatter_extreme(matrix, touched, rows, cols, values, minimum)

    def scatter_floor(self, matrix, rows, cols, floors) -> None:
        _np_scatter_floor(matrix, rows, cols, floors)

    def scatter_add_1d(self, table, idx, values) -> None:
        _np_scatter_add_1d(table, idx, values)


class NumbaKernels(KernelBackend):
    """Jitted per-element loops plus the fused hash->scatter pass."""

    name = "numba"
    fused = True

    def __init__(self, jit: Callable):
        self._scatter_add = jit(_kb_scatter_add)
        self._scatter_sub = jit(_kb_scatter_sub)
        self._scatter_extreme = jit(_kb_scatter_extreme)
        self._scatter_floor = jit(_kb_scatter_floor)
        self._fused = jit(_kb_fused_scatter)

    def scatter_add(self, matrix, rows, cols, values) -> None:
        if rows.shape[0] == 0:
            return
        if values is None:
            values = np.ones(rows.shape[0], dtype=np.float64)
        self._scatter_add(matrix.reshape(-1),
                          _flat_indices(rows, cols, matrix.shape[1]), values)

    def scatter_sub(self, matrix, rows, cols, values) -> None:
        if rows.shape[0] == 0:
            return
        if values is None:
            values = np.ones(rows.shape[0], dtype=np.float64)
        self._scatter_sub(matrix.reshape(-1),
                          _flat_indices(rows, cols, matrix.shape[1]), values)

    def scatter_extreme(self, matrix, touched, rows, cols, values,
                        minimum) -> None:
        if rows.shape[0] == 0:
            return
        self._scatter_extreme(matrix.reshape(-1), touched.reshape(-1),
                              _flat_indices(rows, cols, matrix.shape[1]),
                              values, minimum)

    def scatter_floor(self, matrix, rows, cols, floors) -> None:
        if rows.shape[0] == 0:
            return
        self._scatter_floor(matrix.reshape(-1),
                            _flat_indices(rows, cols, matrix.shape[1]),
                            floors)

    def scatter_add_1d(self, table, idx, values) -> None:
        if idx.shape[0] == 0:
            return
        if values is None:
            values = np.ones(idx.shape[0], dtype=np.float64)
        self._scatter_add(table, idx.astype(np.int64, copy=False), values)

    def fused_ingest(self, sketch_matrix, touched, row_hash, col_hash,
                     skeys, tkeys, values, op) -> None:
        if skeys.shape[0] == 0:
            return
        ra_hi, ra_lo, rb, rw = _hash_coefficients(row_hash)
        ca_hi, ca_lo, cb, cw = _hash_coefficients(col_hash)
        flat_touch = (touched.reshape(-1) if touched is not None
                      else _DUMMY_TOUCH)
        self._fused(sketch_matrix.reshape(-1), flat_touch,
                    np.uint64(sketch_matrix.shape[1]),
                    ra_hi, ra_lo, rb, rw, ca_hi, ca_lo, cb, cw,
                    skeys, tkeys, values, op)


# -- registry -----------------------------------------------------------------

_numba_checked = False
_numba_jit: Optional[Callable] = None


def _numba_available() -> bool:
    global _numba_checked, _numba_jit
    if not _numba_checked:
        _numba_checked = True
        try:
            from numba import njit  # type: ignore
            _numba_jit = njit(cache=True, fastmath=False)
        except Exception:
            _numba_jit = None
    return _numba_jit is not None


def available_backends() -> Tuple[str, ...]:
    """Backend names accepted by :func:`set_backend` on this machine."""
    names = ["auto", "numpy"]
    if _numba_available():
        names.append("numba")
    return tuple(names)


_instances: Dict[str, KernelBackend] = {}
_default: Optional[KernelBackend] = None


def resolve_backend(name: Optional[str]) -> KernelBackend:
    """Resolve a backend name (``None`` -> ``$REPRO_KERNEL`` -> auto)."""
    if not name:
        name = os.environ.get("REPRO_KERNEL") or "auto"
    name = name.lower()
    if name == "auto":
        name = "numba" if _numba_available() else "numpy"
    if name == "numpy":
        return _instances.setdefault("numpy", NumpyKernels())
    if name == "numba":
        if not _numba_available():
            raise ValueError(
                "kernel backend 'numba' requested but numba is not "
                "importable; install numba or use 'numpy'/'auto' "
                f"(available: {', '.join(available_backends())})")
        return _instances.setdefault("numba", NumbaKernels(_numba_jit))
    raise ValueError(
        f"unknown kernel backend {name!r}; "
        f"available: {', '.join(available_backends())}")


def _publish_gauge(active: str) -> None:
    try:
        from repro.obs.instruments import OBS
    except Exception:  # pragma: no cover - obs must never break ingest
        return
    if not OBS.enabled:
        return
    for name in ("numpy", "numba"):
        OBS.kernel_backend.labels(name).set(1.0 if name == active else 0.0)


def get_backend(name: Optional[str] = None) -> KernelBackend:
    """The backend to dispatch to: explicit name > process default."""
    global _default
    if name is not None:
        return resolve_backend(name)
    if _default is None:
        _default = resolve_backend(None)
        _publish_gauge(_default.name)
    return _default


def set_backend(name: Optional[str]) -> str:
    """Set the process-wide default backend; returns the resolved name.

    ``None``/"auto" re-resolves from ``$REPRO_KERNEL`` and numba
    availability.
    """
    global _default
    _default = resolve_backend(name)
    _publish_gauge(_default.name)
    return _default.name


def active_backend() -> str:
    """Name of the backend bulk operations currently dispatch to."""
    return get_backend().name


@contextlib.contextmanager
def use_backend(name: Optional[str]) -> Iterator[KernelBackend]:
    """Temporarily switch the process default (tests, benchmarks)."""
    global _default
    previous = _default
    _default = resolve_backend(name) if name else get_backend()
    try:
        yield _default
    finally:
        _default = previous


def reset() -> None:
    """Forget the cached default so the next call re-reads the env var."""
    global _default
    _default = None
