"""Sparse storage backend for graph sketches.

The paper (Section 5.1.1) weighs adjacency matrices against adjacency
hash-lists and picks the dense matrix because compressed sketches are
"relatively dense".  That holds at tight compression ratios -- but at
loose ratios (or on short streams) most of the ``w x w`` cells stay
empty, and a dense array wastes ``O(w^2)`` memory for ``O(distinct
edges)`` of information.  :class:`SparseGraphSketch` is the hash-list
variant the paper describes: a dict of occupied cells with incrementally
maintained row/column sums, so every operation keeps the same O(1)
per-update / per-point-query costs while memory tracks occupancy.

It implements the same interface as
:class:`~repro.core.graph_sketch.GraphSketch` (sum/count aggregation
only -- the dense class remains the home of min/max) and is selected via
``TCM(..., sparse=True)``.  Dense and sparse sketches with the same hash
configuration are estimate-for-estimate identical; tests enforce it.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core import kernels as _kernels
from repro.core.aggregation import Aggregation
from repro.hashing.family import PairwiseHash
from repro.hashing.labels import Label, label_to_int


class SparseGraphSketch:
    """Dict-of-cells graph sketch with the dense class's interface."""

    def __init__(self, row_hash: PairwiseHash,
                 col_hash: Optional[PairwiseHash] = None,
                 directed: bool = True,
                 aggregation: Aggregation = Aggregation.SUM,
                 keep_labels: bool = False):
        if aggregation not in (Aggregation.SUM, Aggregation.COUNT):
            raise ValueError(
                "the sparse backend supports sum/count aggregation only")
        self._row_hash = row_hash
        self._col_hash = col_hash if col_hash is not None else row_hash
        self._graphical = col_hash is None
        if not directed and not self._graphical:
            raise ValueError(
                "undirected sketches need a single hash function "
                "(symmetric square matrix); do not pass col_hash")
        self.directed = directed
        self.aggregation = aggregation
        self._epoch = 0
        self._cells: Dict[Tuple[int, int], float] = {}
        self._row_sums: Dict[int, float] = {}
        self._col_sums: Dict[int, float] = {}
        self._row_adjacency: Dict[int, Set[int]] = {}
        self._col_adjacency: Dict[int, Set[int]] = {}
        self._row_labels: Optional[Dict[int, Set[Label]]] = {} if keep_labels else None
        self._col_labels: Optional[Dict[int, Set[Label]]] = (
            self._row_labels if (keep_labels and self._graphical)
            else ({} if keep_labels else None))

    # -- shape and introspection ------------------------------------------------

    @property
    def rows(self) -> int:
        return self._row_hash.width

    @property
    def cols(self) -> int:
        return self._col_hash.width

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def size_in_cells(self) -> int:
        """The *logical* cell budget (comparable with the dense class)."""
        return self.rows * self.cols

    @property
    def occupied_cells(self) -> int:
        """Cells actually stored -- the real memory footprint driver."""
        return len(self._cells)

    @property
    def is_graphical(self) -> bool:
        return self._graphical

    @property
    def keeps_labels(self) -> bool:
        return self._row_labels is not None

    @property
    def epoch(self) -> int:
        """Monotone update counter (see :attr:`GraphSketch.epoch`)."""
        return self._epoch

    def bump_epoch(self) -> None:
        """Invalidate epoch-keyed caches after an out-of-band mutation."""
        self._epoch += 1

    def memory_bytes(self) -> int:
        """Estimated footprint: occupancy-proportional, unlike the dense
        class.  ~96B per occupied cell (tuple key + float + dict slot),
        ~56B per maintained row/column sum, ~32B per adjacency entry,
        plus the extended-sketch label estimate used by
        :meth:`GraphSketch.memory_bytes`.  Also available as
        :attr:`nbytes`.
        """
        total = 96 * len(self._cells)
        total += 56 * (len(self._row_sums) + len(self._col_sums))
        total += 32 * (sum(len(s) for s in self._row_adjacency.values())
                       + sum(len(s) for s in self._col_adjacency.values()))
        if self._row_labels is not None:
            maps = [self._row_labels]
            if self._col_labels is not self._row_labels:
                maps.append(self._col_labels)
            for label_map in maps:
                total += 64 * len(label_map)
                total += 80 * sum(len(bucket) for bucket in label_map.values())
        return total

    @property
    def nbytes(self) -> int:
        return self.memory_bytes()

    @property
    def matrix(self) -> np.ndarray:
        """Materialized dense matrix (O(w^2); for interop/serialization)."""
        dense = np.zeros(self.shape)
        for (r, c), value in self._cells.items():
            dense[r, c] = value
        dense.flags.writeable = False
        return dense

    def node_of(self, label: Label) -> int:
        self._require_graphical("node_of")
        return self._row_hash(label)

    def row_of(self, label: Label) -> int:
        return self._row_hash(label)

    def col_of(self, label: Label) -> int:
        return self._col_hash(label)

    def ext(self, bucket: int) -> Set[Label]:
        if self._row_labels is None:
            raise ValueError("sketch was built without keep_labels=True")
        return set(self._row_labels.get(bucket, ()))

    def _require_graphical(self, operation: str) -> None:
        if not self._graphical:
            raise ValueError(
                f"{operation}() needs a graphical (square, single-hash) "
                "sketch; this sketch is non-square")

    # -- updates ---------------------------------------------------------------

    def _buckets(self, source: Label, target: Label) -> Tuple[int, int]:
        kx = label_to_int(source)
        ky = label_to_int(target)
        if not self.directed and kx > ky:
            kx, ky = ky, kx
        return self._row_hash.hash_int(kx), self._col_hash.hash_int(ky)

    def _apply(self, r: int, c: int, delta: float) -> None:
        self._cells[(r, c)] = self._cells.get((r, c), 0.0) + delta
        self._row_sums[r] = self._row_sums.get(r, 0.0) + delta
        self._col_sums[c] = self._col_sums.get(c, 0.0) + delta
        self._row_adjacency.setdefault(r, set()).add(c)
        self._col_adjacency.setdefault(c, set()).add(r)

    def update(self, source: Label, target: Label, weight: float = 1.0) -> None:
        if weight < 0:
            raise ValueError(f"stream weights must be non-negative, got {weight}")
        r, c = self._buckets(source, target)
        self._epoch += 1
        self._apply(r, c, weight if self.aggregation is Aggregation.SUM else 1.0)
        if self._row_labels is not None:
            self._row_labels.setdefault(self._row_hash(source), set()).add(source)
            self._col_labels.setdefault(self._col_hash(target), set()).add(target)

    def remove(self, source: Label, target: Label, weight: float = 1.0) -> None:
        if not self.aggregation.invertible:
            raise ValueError(
                f"{self.aggregation.value} aggregation does not support deletion")
        if weight < 0:
            raise ValueError(f"removal weights must be non-negative, got {weight}")
        r, c = self._buckets(source, target)
        self._epoch += 1
        self._apply(r, c, -(weight if self.aggregation is Aggregation.SUM
                            else 1.0))

    def remove_many(self, source_keys: np.ndarray, target_keys: np.ndarray,
                    weights: np.ndarray) -> None:
        """Bulk deletion: vectorized hashing, grouped dict decrements.

        Mirrors :meth:`update_many`'s layout -- hash the whole batch,
        group by distinct cell, touch the dict once per distinct cell
        with the (negated) per-cell weight sum.  Exact for the integer
        and dyadic weights real streams carry, same as bulk insertion.
        """
        if not self.aggregation.invertible:
            raise ValueError(
                f"{self.aggregation.value} aggregation does not support deletion")
        source_keys = np.asarray(source_keys, dtype=np.uint64)
        target_keys = np.asarray(target_keys, dtype=np.uint64)
        weights = np.asarray(weights, dtype=float)
        if weights.size and (weights < 0).any():
            bad = float(weights[weights < 0][0])
            raise ValueError(f"removal weights must be non-negative, got {bad}")
        if not self.directed:
            source_keys, target_keys = (np.minimum(source_keys, target_keys),
                                        np.maximum(source_keys, target_keys))
        rows = self._row_hash.hash_many(source_keys)
        cols = self._col_hash.hash_many(target_keys)
        if len(rows) == 0:
            return
        self._epoch += 1
        self._scatter(rows, cols,
                      weights if self.aggregation is Aggregation.SUM else None,
                      insert=False)

    def update_many(self, source_keys: np.ndarray, target_keys: np.ndarray,
                    weights: np.ndarray,
                    source_labels: Optional[Sequence[Label]] = None,
                    target_labels: Optional[Sequence[Label]] = None) -> None:
        """Bulk ingest: vectorized hashing, grouped dict accumulation.

        Hashing and per-cell weight accumulation are vectorized; the dict
        is then touched once per *distinct* cell in the chunk instead of
        once per element, which is what makes the sparse backend's bulk
        path scale with occupancy rather than stream length.  Cell sums
        are accumulated per cell in stream order before the single dict
        add, so results match the scalar path exactly for the integer and
        dyadic weights real streams carry (arbitrary floats can differ in
        the last ulp because float addition is not associative).

        Extended sketches need ``source_labels``/``target_labels`` for the
        per-bucket label sets, exactly as in
        :meth:`GraphSketch.update_many`.
        """
        source_keys = np.asarray(source_keys, dtype=np.uint64)
        target_keys = np.asarray(target_keys, dtype=np.uint64)
        weights = np.asarray(weights, dtype=float)
        if weights.size and (weights < 0).any():
            bad = float(weights[weights < 0][0])
            raise ValueError(f"stream weights must be non-negative, got {bad}")
        if self._row_labels is not None and (source_labels is None
                                             or target_labels is None):
            raise ValueError(
                "this sketch materializes labels (keep_labels=True); "
                "update_many needs source_labels/target_labels too")
        if source_labels is not None and self._row_labels is not None:
            from repro.core.graph_sketch import GraphSketch
            GraphSketch._record_labels_bulk(source_keys, source_labels,
                                            self._row_hash, self._row_labels)
            GraphSketch._record_labels_bulk(target_keys, target_labels,
                                            self._col_hash, self._col_labels)
        if not self.directed:
            source_keys, target_keys = (np.minimum(source_keys, target_keys),
                                        np.maximum(source_keys, target_keys))
        rows = self._row_hash.hash_many(source_keys)
        cols = self._col_hash.hash_many(target_keys)
        if len(rows) == 0:
            return
        self._epoch += 1
        self._scatter(rows, cols,
                      weights if self.aggregation is Aggregation.SUM else None,
                      insert=True)

    def _scatter(self, rows: np.ndarray, cols: np.ndarray,
                 values: Optional[np.ndarray], insert: bool = True) -> None:
        """Grouped dict scatter of one pre-hashed batch.

        The sparse counterpart of :meth:`GraphSketch._scatter`: the
        backend's segment-sum kernel accumulates per-cell totals in
        stream order, then the dict is touched once per distinct cell.
        ``values is None`` means unit weights (count aggregation).
        Callers bump the epoch and validate.
        """
        if values is None:
            values = np.ones(len(rows))
        cells, sums = _kernels.get_backend().segment_cell_sums(
            rows, cols, self.cols, values)
        width = self.cols
        if not insert:
            sums = -sums
        for cell, total in zip(cells.tolist(), sums.tolist()):
            self._apply(cell // width, cell % width, total)

    def raise_cell_to(self, source: Label, target: Label,
                      floor: float) -> None:
        if self.aggregation is not Aggregation.SUM:
            raise ValueError("conservative update requires sum aggregation")
        r, c = self._buckets(source, target)
        current = self._cells.get((r, c), 0.0)
        if current < floor:
            self._epoch += 1
            self._apply(r, c, floor - current)

    def raise_cells_to(self, source_keys: np.ndarray,
                       target_keys: np.ndarray,
                       floors: np.ndarray) -> None:
        """Batched :meth:`raise_cell_to` (see the dense counterpart).

        Raising a cell repeatedly is idempotent up to the maximum floor,
        so the sequential dict walk here reaches the same fixed point as
        the dense kernel's ``np.maximum.at``.
        """
        if self.aggregation is not Aggregation.SUM:
            raise ValueError("conservative update requires sum aggregation")
        source_keys = np.asarray(source_keys, dtype=np.uint64)
        target_keys = np.asarray(target_keys, dtype=np.uint64)
        if not self.directed:
            source_keys, target_keys = (np.minimum(source_keys, target_keys),
                                        np.maximum(source_keys, target_keys))
        rows = self._row_hash.hash_many(source_keys)
        cols = self._col_hash.hash_many(target_keys)
        self._epoch += 1
        cells = self._cells
        for r, c, floor in zip(rows.tolist(), cols.tolist(),
                               np.asarray(floors, dtype=float).tolist()):
            current = cells.get((r, c), 0.0)
            if current < floor:
                self._apply(r, c, floor - current)

    # -- point estimates ---------------------------------------------------------

    def edge_estimate(self, source: Label, target: Label) -> float:
        return self._cells.get(self._buckets(source, target), 0.0)

    def edge_estimates(self, source_keys: np.ndarray,
                       target_keys: np.ndarray) -> np.ndarray:
        source_keys = np.asarray(source_keys, dtype=np.uint64)
        target_keys = np.asarray(target_keys, dtype=np.uint64)
        if not self.directed:
            source_keys, target_keys = (np.minimum(source_keys, target_keys),
                                        np.maximum(source_keys, target_keys))
        rows = self._row_hash.hash_many(source_keys)
        cols = self._col_hash.hash_many(target_keys)
        return np.array([self._cells.get((r, c), 0.0)
                         for r, c in zip(rows.tolist(), cols.tolist())])

    def out_flow(self, source: Label) -> float:
        if not self.directed:
            raise ValueError("out_flow() is directed-only; use flow()")
        return self._row_sums.get(self._row_hash(source), 0.0)

    def in_flow(self, target: Label) -> float:
        if not self.directed:
            raise ValueError("in_flow() is directed-only; use flow()")
        return self._col_sums.get(self._col_hash(target), 0.0)

    def flow(self, node: Label) -> float:
        if self.directed:
            raise ValueError("flow() is for undirected sketches; "
                             "use in_flow/out_flow")
        b = self._row_hash(node)
        return (self._row_sums.get(b, 0.0) + self._col_sums.get(b, 0.0)
                - self._cells.get((b, b), 0.0))

    def total_mass(self) -> float:
        return sum(self._row_sums.values())

    # -- bulk read accessors (query-engine kernels) -----------------------------

    def row_sums(self) -> np.ndarray:
        """All row sums as a dense vector, built from the maintained dict.

        O(occupied rows), unlike :attr:`matrix` which densifies O(w^2).
        """
        sums = np.zeros(self.rows, dtype=np.float64)
        for bucket, value in self._row_sums.items():
            sums[bucket] = value
        return sums

    def col_sums(self) -> np.ndarray:
        """All column sums as a dense vector (see :meth:`row_sums`)."""
        sums = np.zeros(self.cols, dtype=np.float64)
        for bucket, value in self._col_sums.items():
            sums[bucket] = value
        return sums

    def diagonal(self) -> np.ndarray:
        """Self-loop cells as a dense vector."""
        diag = np.zeros(min(self.rows, self.cols), dtype=np.float64)
        for (r, c), value in self._cells.items():
            if r == c:
                diag[r] = value
        return diag

    def positive_cells(self) -> Tuple[np.ndarray, np.ndarray]:
        """Row/column indices of every stored cell with positive weight."""
        rows = []
        cols = []
        for (r, c), value in self._cells.items():
            if value > 0:
                rows.append(r)
                cols.append(c)
        return (np.asarray(rows, dtype=np.int64),
                np.asarray(cols, dtype=np.int64))

    # -- graph topology -------------------------------------------------------------

    def successors(self, bucket: int) -> np.ndarray:
        self._require_graphical("successors")
        forward = {c for c in self._row_adjacency.get(bucket, ())
                   if self._cells.get((bucket, c), 0.0) > 0}
        if not self.directed:
            forward |= {r for r in self._col_adjacency.get(bucket, ())
                        if self._cells.get((r, bucket), 0.0) > 0}
        return np.array(sorted(forward), dtype=np.int64)

    def predecessors(self, bucket: int) -> np.ndarray:
        self._require_graphical("predecessors")
        backward = {r for r in self._col_adjacency.get(bucket, ())
                    if self._cells.get((r, bucket), 0.0) > 0}
        if not self.directed:
            backward |= {c for c in self._row_adjacency.get(bucket, ())
                         if self._cells.get((bucket, c), 0.0) > 0}
        return np.array(sorted(backward), dtype=np.int64)

    def bucket_edge_weight(self, r: int, c: int) -> float:
        if self.directed or r == c:
            return self._cells.get((r, c), 0.0)
        return (self._cells.get((r, c), 0.0)
                + self._cells.get((c, r), 0.0))

    # -- mergeability / maintenance ----------------------------------------------------

    def compatible_with(self, other) -> bool:
        return (self._row_hash == other._row_hash
                and self._col_hash == other._col_hash
                and self.directed == other.directed
                and self.aggregation == other.aggregation)

    def merge_from(self, other: "SparseGraphSketch") -> None:
        if not self.compatible_with(other):
            raise ValueError("cannot merge sketches built with different "
                             "hashes, direction or aggregation")
        self._epoch += 1
        for (r, c), value in other._cells.items():
            self._apply(r, c, value)
        if self._row_labels is not None:
            if other._row_labels is None:
                raise ValueError("cannot merge a plain sketch into an "
                                 "extended one (labels would be lost)")
            for bucket, labels in other._row_labels.items():
                self._row_labels.setdefault(bucket, set()).update(labels)
            if self._col_labels is not self._row_labels:
                for bucket, labels in other._col_labels.items():
                    self._col_labels.setdefault(bucket, set()).update(labels)

    def scale_by(self, factor: float) -> None:
        """Multiply every stored cell (and maintained sums) by ``factor``.

        O(occupied cells); see :meth:`GraphSketch.scale_by` -- this is
        what lets :class:`repro.core.decay.TimeDecayedTCM` renormalize a
        sparse-backed summary.
        """
        if self.aggregation is not Aggregation.SUM:
            raise ValueError("scale_by requires sum aggregation")
        if factor < 0:
            raise ValueError(f"scale factor must be non-negative, got {factor}")
        self._epoch += 1
        for cell in self._cells:
            self._cells[cell] *= factor
        for bucket in self._row_sums:
            self._row_sums[bucket] *= factor
        for bucket in self._col_sums:
            self._col_sums[bucket] *= factor

    def clear(self) -> None:
        self._epoch += 1
        self._cells.clear()
        self._row_sums.clear()
        self._col_sums.clear()
        self._row_adjacency.clear()
        self._col_adjacency.clear()
        if self._row_labels is not None:
            self._row_labels.clear()
            if self._col_labels is not self._row_labels:
                self._col_labels.clear()

    def __repr__(self) -> str:
        kind = "graphical" if self._graphical else "non-square"
        return (f"SparseGraphSketch({self.rows}x{self.cols}, {kind}, "
                f"{'directed' if self.directed else 'undirected'}, "
                f"agg={self.aggregation.value}, "
                f"occupied={self.occupied_cells})")
