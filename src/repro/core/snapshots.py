"""Temporal sketch snapshots (paper Section 7, future work).

"We plan to use it for ... monitoring networks using temporal snapshots
of our sketches."  :class:`SnapshotRing` realizes that: the stream is cut
into fixed-length time buckets, each bucket summarized by its own TCM
built with the *same* hash configuration, and a bounded ring of recent
buckets is retained.  Because same-configuration sketches are mergeable
(cell-wise addition), any contiguous range of buckets collapses into one
summary, so "what happened between t1 and t2" is answerable at bucket
granularity long after the raw stream is gone.

This complements :class:`~repro.streams.window.SlidingWindow`: the window
maintains one exact trailing horizon (and must buffer live elements for
deletion); the ring keeps no elements at all and supports arbitrary
historical ranges, at bucket granularity.
"""

from __future__ import annotations

import copy
import math
from collections import OrderedDict
from typing import Iterator, Optional, Tuple

from repro.core.tcm import TCM
from repro.hashing.labels import Label
from repro.streams.model import StreamEdge


class SnapshotRing:
    """A bounded ring of per-time-bucket TCM snapshots.

    :param bucket_length: stream-time span of one snapshot.
    :param capacity: how many most-recent buckets to retain.
    :param d, width, seed, directed: the shared TCM configuration; every
        snapshot uses identical hash functions so ranges merge exactly.
    """

    def __init__(self, bucket_length: float, capacity: int, *,
                 d: int = 4, width: int = 64, seed: Optional[int] = 0,
                 directed: bool = True):
        if bucket_length <= 0:
            raise ValueError(
                f"bucket_length must be positive, got {bucket_length}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.bucket_length = bucket_length
        self.capacity = capacity
        self._config = dict(d=d, width=width, seed=seed, directed=directed)
        # bucket index -> TCM, oldest first.
        self._buckets: "OrderedDict[int, TCM]" = OrderedDict()
        self._watermark = float("-inf")

    # -- ingest ----------------------------------------------------------------

    def bucket_of(self, timestamp: float) -> int:
        """The bucket index a timestamp falls into."""
        return math.floor(timestamp / self.bucket_length)

    def observe(self, edge: StreamEdge) -> None:
        """Route one element into its time bucket's snapshot."""
        if edge.timestamp < self._watermark:
            raise ValueError(
                f"out-of-order element at t={edge.timestamp} "
                f"(watermark is {self._watermark})")
        self._watermark = edge.timestamp
        bucket = self.bucket_of(edge.timestamp)
        if bucket not in self._buckets:
            self._buckets[bucket] = TCM(**self._config)
            while len(self._buckets) > self.capacity:
                self._buckets.popitem(last=False)  # evict the oldest
        self._buckets[bucket].update(edge.source, edge.target, edge.weight)

    def consume(self, stream) -> int:
        count = 0
        for edge in stream:
            self.observe(edge)
            count += 1
        return count

    # -- inspection ---------------------------------------------------------------

    def __len__(self) -> int:
        """Number of retained snapshots."""
        return len(self._buckets)

    def buckets(self) -> Iterator[Tuple[int, TCM]]:
        """(bucket index, snapshot) pairs, oldest first."""
        return iter(self._buckets.items())

    @property
    def span(self) -> Optional[Tuple[float, float]]:
        """Stream-time interval covered by the retained snapshots."""
        if not self._buckets:
            return None
        indexes = list(self._buckets)
        return (indexes[0] * self.bucket_length,
                (indexes[-1] + 1) * self.bucket_length)

    # -- range queries ---------------------------------------------------------------

    def range_summary(self, start_time: float, end_time: float) -> TCM:
        """One merged TCM covering every retained bucket overlapping
        ``[start_time, end_time)``.

        :raises KeyError: when the range touches no retained bucket (it
            was never observed or already evicted).
        """
        if end_time <= start_time:
            raise ValueError("end_time must be after start_time")
        first = self.bucket_of(start_time)
        last = self.bucket_of(end_time - 1e-12)
        # Iterate the retained buckets, not the (possibly astronomically
        # wide) index range.
        members = [tcm for bucket, tcm in self._buckets.items()
                   if first <= bucket <= last]
        if not members:
            raise KeyError(
                f"no retained snapshots overlap [{start_time}, {end_time})")
        merged = copy.deepcopy(members[0])
        for tcm in members[1:]:
            merged.merge_from(tcm)
        return merged

    def edge_weight_series(self, source: Label, target: Label):
        """Per-bucket estimated edge weight, oldest first.

        The time series a network monitor plots: ``[(bucket_index,
        estimate), ...]`` for every retained snapshot.
        """
        return [(bucket, tcm.edge_weight(source, target))
                for bucket, tcm in self._buckets.items()]
